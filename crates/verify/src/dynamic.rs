//! Dynamic partial-order reduction: sleep sets over *observed* conflicts,
//! and per-trace happens-before from vector clocks.
//!
//! The static modes ([`MayAccessMode::Declared`], [`MayAccessMode::
//! Automaton`]) judge independence against an over-approximation of what
//! a process *may* access in its future. The remaining conservatism is
//! per-trace: a register in a process's future set but never actually
//! raced on this path still blocks an ample singleton. This module holds
//! the machinery [`MayAccessMode::Dynamic`] adds on top of the automaton
//! substrate:
//!
//! * **Split future sets** (owned by [`crate::analysis`]): the automaton
//!   fixpoint keeps its read/write split, so ample selection tests full
//!   *independence* ([`Footprint::independent`]) instead of mere overlap
//!   — two processes whose futures only share reads stay independent.
//! * **Sleep sets** ([`SleepTable`]): the safety DFS threads a bitmask
//!   of processes whose next step was already explored in a sibling
//!   branch and has *not since been raced with* — their successors are
//!   Mazurkiewicz-equivalent to states reached via the sibling, so the
//!   transitions are skipped. A process is woken the moment a step with
//!   a conflicting footprint fires ([`observed_conflict`]). On a
//!   revisit, the stored mask shrinks monotonically
//!   ([`SleepTable::revisit`]): a state is re-expanded only when the new
//!   visit sleeps strictly fewer processes than every earlier visit
//!   covered, so termination is preserved (at most one re-expansion per
//!   bit).
//! * **Trace causality** ([`trace_causality`]): an offline replay that
//!   assigns every event a [`VectorClock`] — join of the clocks of its
//!   conflicting predecessors, then a tick of its own component. The
//!   clock order *is* the trace's happens-before relation (program order
//!   ∪ conflict order), and the differential/property walls use it to
//!   audit what the in-engine sleep machinery treats as concurrent.
//!
//! Soundness boundaries are enforced by [`sleep_sets_active`]: sleeping
//! is restricted to the safety DFS (cycle/progress back-propagation
//! would see pruned *edges*), to concrete (non-quotient) exploration
//! (masks index concrete process ids; a symmetry representative permutes
//! them), and to crash-free budgets (a crash is an extra, always-enabled
//! transition the sibling branch never covered).
//!
//! [`MayAccessMode::Declared`]: crate::MayAccessMode::Declared
//! [`MayAccessMode::Automaton`]: crate::MayAccessMode::Automaton
//! [`MayAccessMode::Dynamic`]: crate::MayAccessMode::Dynamic
//! [`Footprint::independent`]: cfc_core::Footprint::independent

use cfc_core::{
    Footprint, Memory, OpResult, Process, ProcessId, RegisterId, RegisterSet, Status, Step,
    VectorClock,
};

use crate::explore::ScheduleStep;

/// Sleep-set masks are `u32` bitmasks over concrete process ids, so
/// sleeping deactivates itself beyond this many processes.
pub const MAX_SLEEP_PROCS: usize = 32;

/// Should the safety DFS thread sleep sets through this traversal?
///
/// Every condition is load-bearing (see the module docs): `dynamic` is
/// the mode opt-in, `safety_dfs` excludes the progress/liveness graph
/// builds (they consume *edges*, which sleeping prunes), `use_sym`
/// excludes the symmetry quotient (masks index concrete pids),
/// `crash_budget` excludes crash branching (crashes are always enabled,
/// never covered by a sibling), and `n` bounds the mask width.
pub(crate) fn sleep_sets_active(
    por: bool,
    dynamic: bool,
    safety_dfs: bool,
    use_sym: bool,
    crash_budget: u32,
    n: usize,
) -> bool {
    por && dynamic && safety_dfs && !use_sym && crash_budget == 0 && n <= MAX_SLEEP_PROCS
}

/// Did two steps with these footprints race, as far as dynamic pruning
/// is concerned?
///
/// `drop_races_on` is the planted-mutant knob
/// ([`crate::ExploreConfig::drop_races_on`]): conflicts that only go
/// through the named register are dropped from the observed relation,
/// exactly the under-reporting bug the dynamic-vs-static differential
/// wall exists to catch. Production configs leave it `None`, where this
/// is plain [`Footprint::conflicts_with`].
pub fn observed_conflict(a: &Footprint, b: &Footprint, drop_races_on: Option<RegisterId>) -> bool {
    match drop_races_on {
        None => a.conflicts_with(b),
        Some(r) => a.conflict_registers(b).iter().any(|x| x != r),
    }
}

/// Per-state sleep masks, indexed by the store's interned state id.
///
/// Bit `p` of a mask set means: on every visit recorded so far, process
/// `p`'s step out of this state was slept (covered by a sibling branch).
/// The table lives *beside* the packed [`NodeStore`] — 4 bytes per
/// state, counted into the store footprint's index bytes rather than
/// the resident `bytes_per_state` of the packed records.
///
/// [`NodeStore`]: crate::store::NodeStore
#[derive(Debug, Default)]
pub(crate) struct SleepTable {
    masks: Vec<u32>,
}

impl SleepTable {
    pub(crate) fn new() -> Self {
        SleepTable::default()
    }

    /// Records the mask of a freshly interned state. Fresh ids are
    /// dense and increasing, so the table grows in lockstep with the
    /// store.
    pub(crate) fn record_fresh(&mut self, id: u32, mask: u32) {
        debug_assert_eq!(id as usize, self.masks.len(), "fresh ids must be dense");
        self.masks.push(mask);
    }

    /// Decides a revisit of state `id` with sleep mask `mask`.
    ///
    /// Earlier visits covered every transition outside the stored mask.
    /// If the stored mask is a subset of `mask`, this visit would
    /// explore a subset of what is already covered — prune (`None`).
    /// Otherwise the state must be re-expanded; the visit may soundly
    /// sleep the intersection (processes slept by *both* this visit and
    /// all earlier coverage), which is stored back so the mask shrinks
    /// strictly on every re-expansion.
    pub(crate) fn revisit(&mut self, id: u32, mask: u32) -> Option<u32> {
        let stored = self.masks[id as usize];
        let inter = stored & mask;
        if inter == stored {
            None
        } else {
            self.masks[id as usize] = inter;
            Some(inter)
        }
    }

    /// Heap bytes held by the table (for store-footprint accounting).
    pub(crate) fn heap_bytes(&self) -> usize {
        self.masks.capacity() * std::mem::size_of::<u32>()
    }
}

/// One event of a trace with its causal clock.
#[derive(Clone, Debug)]
pub struct CausalEvent {
    /// Position in the flattened schedule (crash entries excluded).
    pub index: usize,
    /// The process that took the step.
    pub pid: ProcessId,
    /// The event's vector clock: the join of every conflicting
    /// predecessor's clock, ticked at `pid`. Clock order is
    /// happens-before.
    pub clock: VectorClock,
    /// The step's read/write footprint (empty for internal/halt steps).
    pub footprint: Footprint,
}

/// One observed conflict: a pair of events racing on concrete registers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictEdge {
    /// Event index of the earlier (happens-before) side.
    pub from: usize,
    /// Event index of the later side.
    pub to: usize,
    /// The registers the two footprints actually conflict on.
    pub registers: RegisterSet,
}

/// The happens-before structure of one concrete trace.
#[derive(Clone, Debug, Default)]
pub struct TraceCausality {
    /// Every non-crash event, in schedule order, with its clock.
    pub events: Vec<CausalEvent>,
    /// Every observed conflict edge, in discovery order (`to` ascending).
    pub conflicts: Vec<ConflictEdge>,
}

impl TraceCausality {
    /// Does event `a` happen before event `b` (strictly)?
    pub fn happens_before(&self, a: usize, b: usize) -> bool {
        a != b && self.events[a].clock.leq(&self.events[b].clock)
    }
}

/// Replays a schedule and computes its happens-before relation.
///
/// The replay mirrors [`crate::explore::replay`] but is *tolerant*:
/// steps of crashed, halted, or out-of-range processes are skipped
/// instead of panicking, so the property suites can feed it arbitrary
/// generated walks. Crash entries change status only — a crash is not
/// an event of the happens-before relation.
///
/// `drop_races_on` threads the planted-mutant knob through to the
/// conflict predicate (see [`observed_conflict`]).
///
/// # Errors
///
/// Propagates memory errors from applying an operation, exactly like
/// the replay machinery.
pub fn trace_causality<P: Process>(
    memory: Memory,
    mut procs: Vec<P>,
    schedule: &[ScheduleStep],
    drop_races_on: Option<RegisterId>,
) -> Result<TraceCausality, cfc_core::ExecError> {
    let mut mem = memory;
    let layout = mem.layout().clone();
    let mut status = vec![Status::Running; procs.len()];
    let mut out = TraceCausality::default();
    // Per-process clocks and, per register, the last writing event and
    // the reading events since that write — the only predecessors a new
    // access can conflict with.
    let mut clocks = vec![VectorClock::new(); procs.len()];
    let mut last_writer: Vec<Option<usize>> = Vec::new();
    let mut readers_since: Vec<Vec<usize>> = Vec::new();

    for s in schedule {
        let pid = match s {
            ScheduleStep::Crash(pid) => {
                if let Some(st) = status.get_mut(pid.index()) {
                    *st = Status::Crashed;
                }
                continue;
            }
            ScheduleStep::Step(pid) => *pid,
        };
        let i = pid.index();
        if i >= procs.len() || status[i] != Status::Running {
            continue;
        }
        let step = procs[i].current();
        let fp = Footprint::of_step(&step, &layout);
        let index = out.events.len();
        let mut clock = clocks[i].clone();

        // Join the clocks of conflicting predecessors and record the
        // conflict edges, register by register.
        let mut preds: Vec<(usize, RegisterSet)> = Vec::new();
        let join_pred = |ev: usize, r: RegisterId, preds: &mut Vec<(usize, RegisterSet)>| {
            if let Some((_, regs)) = preds.iter_mut().find(|(e, _)| *e == ev) {
                regs.insert(r);
            } else {
                let mut regs = RegisterSet::new();
                regs.insert(r);
                preds.push((ev, regs));
            }
        };
        for r in fp.reads.iter().chain(fp.writes.iter()) {
            if drop_races_on == Some(r) {
                continue;
            }
            let ri = r.index();
            if ri >= last_writer.len() {
                continue;
            }
            let writes = fp.writes.contains(r);
            // Any access conflicts with the last write; a write also
            // conflicts with every read since that write.
            if let Some(w) = last_writer[ri] {
                if out.events[w].pid != pid {
                    join_pred(w, r, &mut preds);
                }
            }
            if writes {
                for &rd in &readers_since[ri] {
                    if out.events[rd].pid != pid {
                        join_pred(rd, r, &mut preds);
                    }
                }
            }
        }
        preds.sort_by_key(|(e, _)| *e);
        for (ev, regs) in preds {
            clock.join(&out.events[ev].clock);
            out.conflicts.push(ConflictEdge {
                from: ev,
                to: index,
                registers: regs,
            });
        }
        clock.tick(pid);
        clocks[i] = clock.clone();

        // Update per-register occupancy and advance the process.
        for r in fp.reads.iter().chain(fp.writes.iter()) {
            let ri = r.index();
            if ri >= last_writer.len() {
                last_writer.resize(ri + 1, None);
                readers_since.resize(ri + 1, Vec::new());
            }
            if fp.writes.contains(r) {
                last_writer[ri] = Some(index);
                readers_since[ri].clear();
            } else {
                readers_since[ri].push(index);
            }
        }
        match step {
            Step::Halt => {
                status[i] = Status::Done;
            }
            Step::Internal => procs[i].advance(OpResult::None),
            Step::Op(op) => {
                let result = mem.apply(&op)?;
                procs[i].advance(result);
            }
        }
        out.events.push(CausalEvent {
            index,
            pid,
            clock,
            footprint: fp,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::{Layout, Op, Value};

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Toggler {
        reg: RegisterId,
        pc: u8,
        write: bool,
    }

    impl Process for Toggler {
        fn current(&self) -> Step {
            match self.pc {
                0 if self.write => Step::Op(Op::Write(self.reg, Value::ONE)),
                0 => Step::Op(Op::Read(self.reg)),
                _ => Step::Halt,
            }
        }
        fn advance(&mut self, _r: OpResult) {
            self.pc += 1;
        }
    }

    fn setup(write: [bool; 2], same_reg: bool) -> (Memory, Vec<Toggler>) {
        let mut layout = Layout::new();
        let a = layout.bit("a", false);
        let b = layout.bit("b", false);
        let memory = Memory::new(layout, 1).unwrap();
        let regs = [a, if same_reg { a } else { b }];
        let procs = (0..2)
            .map(|i| Toggler {
                reg: regs[i],
                pc: 0,
                write: write[i],
            })
            .collect();
        (memory, procs)
    }

    fn steps(pids: &[u32]) -> Vec<ScheduleStep> {
        pids.iter()
            .map(|p| ScheduleStep::Step(ProcessId::new(*p)))
            .collect()
    }

    #[test]
    fn write_read_same_register_is_ordered() {
        let (memory, procs) = setup([true, false], true);
        let tc = trace_causality(memory, procs, &steps(&[0, 1]), None).unwrap();
        assert_eq!(tc.events.len(), 2);
        assert!(tc.happens_before(0, 1));
        assert!(!tc.happens_before(1, 0));
        assert_eq!(tc.conflicts.len(), 1);
        assert_eq!((tc.conflicts[0].from, tc.conflicts[0].to), (0, 1));
    }

    #[test]
    fn disjoint_registers_are_concurrent() {
        let (memory, procs) = setup([true, true], false);
        let tc = trace_causality(memory, procs, &steps(&[0, 1]), None).unwrap();
        assert!(tc.conflicts.is_empty());
        assert!(tc.events[0].clock.concurrent_with(&tc.events[1].clock));
        assert!(!tc.happens_before(0, 1) && !tc.happens_before(1, 0));
    }

    #[test]
    fn reads_do_not_race_each_other() {
        let (memory, procs) = setup([false, false], true);
        let tc = trace_causality(memory, procs, &steps(&[0, 1]), None).unwrap();
        assert!(tc.conflicts.is_empty());
        assert!(tc.events[0].clock.concurrent_with(&tc.events[1].clock));
    }

    #[test]
    fn program_order_is_always_happens_before() {
        let (memory, procs) = setup([true, true], false);
        // p0 writes then halts: two events of the same process.
        let tc = trace_causality(memory, procs, &steps(&[0, 0, 1]), None).unwrap();
        assert!(tc.happens_before(0, 1));
        assert_eq!(tc.events[1].pid, ProcessId::new(0));
        assert!(tc.events[1].footprint.is_local());
    }

    #[test]
    fn drop_races_on_hides_exactly_that_register() {
        let (memory, procs) = setup([true, false], true);
        let reg = procs[0].reg;
        let tc =
            trace_causality(memory, procs.clone(), &steps(&[0, 1]), Some(reg)).unwrap();
        assert!(tc.conflicts.is_empty(), "the race through {reg} must vanish");
        assert!(!tc.happens_before(0, 1));
        // The same knob drives the sleep predicate.
        let w = Footprint::of_op(&Op::Write(reg, Value::ONE), &Layout::new());
        assert!(observed_conflict(&w, &w, None));
        assert!(!observed_conflict(&w, &w, Some(reg)));
    }

    #[test]
    fn tolerant_replay_skips_dead_processes() {
        let (memory, procs) = setup([true, true], false);
        let mut sched = vec![ScheduleStep::Crash(ProcessId::new(0))];
        sched.extend(steps(&[0, 0, 1, 7]));
        let tc = trace_causality(memory, procs, &sched, None).unwrap();
        // Only p1's write became an event: p0 was crashed, pid 7 is out
        // of range.
        assert_eq!(tc.events.len(), 1);
        assert_eq!(tc.events[0].pid, ProcessId::new(1));
    }

    #[test]
    fn sleep_table_prunes_supersets_and_shrinks_monotonically() {
        let mut t = SleepTable::new();
        t.record_fresh(0, 0b0110);
        // Sleeping a superset of the stored mask is covered — prune.
        assert_eq!(t.revisit(0, 0b0110), None);
        assert_eq!(t.revisit(0, 0b1110), None);
        // A visit that wakes a stored bit must re-expand, and the
        // stored mask shrinks to the intersection.
        assert_eq!(t.revisit(0, 0b0100), Some(0b0100));
        assert_eq!(t.revisit(0, 0b0110), None, "0b0100 ⊆ 0b0110 now covered");
        assert_eq!(t.revisit(0, 0b0000), Some(0b0000));
        // Everything is covered once the mask hits zero.
        assert_eq!(t.revisit(0, 0b1111), None);
        assert!(t.heap_bytes() >= 4);
    }

    #[test]
    fn sleep_gate_requires_every_condition() {
        assert!(sleep_sets_active(true, true, true, false, 0, 3));
        for bad in [
            sleep_sets_active(false, true, true, false, 0, 3),
            sleep_sets_active(true, false, true, false, 0, 3),
            sleep_sets_active(true, true, false, false, 0, 3),
            sleep_sets_active(true, true, true, true, 0, 3),
            sleep_sets_active(true, true, true, false, 1, 3),
            sleep_sets_active(true, true, true, false, 0, MAX_SLEEP_PROCS + 1),
        ] {
            assert!(!bad);
        }
    }
}
