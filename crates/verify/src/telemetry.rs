//! Observability for the verification engine: phase spans, progress
//! snapshots, and a machine-readable event stream.
//!
//! The drivers in this crate explore graphs with tens of millions of
//! states over minutes or hours. This module makes those runs visible
//! without perturbing them:
//!
//! * [`TelemetryEvent`] — the event vocabulary: span start/end per
//!   engine phase ([`Phase`]), periodic [`Snapshot`]s sampled on an
//!   expansion-count stride, and derived [`TelemetryEvent::Spill`] /
//!   [`TelemetryEvent::IndexGrowth`] notifications.
//! * [`Observer`] — the sink trait, with four implementations:
//!   [`NoopSink`] (the default is simply *no sinks*),
//!   [`HeartbeatSink`] (human-readable stderr lines, rate-limited),
//!   [`JsonlSink`] (one JSON object per line, machine-readable), and
//!   [`Recorder`] (in-memory, for tests).
//! * [`Telemetry`] — a cheap cloneable handle bundling sinks, a
//!   [`Clock`], and the sampling stride. Installed *ambiently* per
//!   thread with [`with_telemetry`], so no driver signature changes:
//!   `with_telemetry(&tel, || explore_sym(...))`.
//!
//! # Passivity
//!
//! Telemetry never influences exploration: sinks observe counters, they
//! do not feed back. With any sink attached, every state, transition,
//! and prune count is identical to the no-op run (asserted by the
//! differential suite in `tests/telemetry.rs`). With no sink attached
//! the per-expansion cost is one predictable branch — the hot loop
//! performs no syscall and no time check between samples, and samples
//! only fire every [`DEFAULT_STRIDE`] expansions.
//!
//! # Environment hooks
//!
//! * `CFC_PROGRESS` — when set (to anything but `0`/`off`/empty),
//!   every driver attaches a stderr heartbeat; a numeric value is the
//!   minimum interval between beats in seconds (default 5). This is
//!   how the CI exhaustive job shows live progress.
//! * `CFC_TELEMETRY_JSONL` — when set to a path, every driver appends
//!   its event stream to that file as JSON lines.

use std::cell::RefCell;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::rc::Rc;

use cfc_core::{Clock, WallClock};

/// Expansions between snapshot samples when no stride is configured.
///
/// At the engine's typical 10⁵–10⁶ states/sec this yields one sample
/// every fraction of a second; the cost between samples is a single
/// countdown decrement.
pub const DEFAULT_STRIDE: u64 = 1 << 16;

// ---------------------------------------------------------------------------
// Store footprint
// ---------------------------------------------------------------------------

/// Memory footprint of the visited store and edge arena, shared by
/// [`Snapshot`]s and by `ExploreStats`/`ProgressStats`/`LivenessStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct StoreFootprint {
    /// Bytes held by the visited-state arena (packed or boxed).
    pub arena_bytes: u64,
    /// Bytes held by the state index (open-addressed or chained).
    pub index_bytes: u64,
    /// Bytes held by the recorded edge list, when edges are recorded.
    pub edge_bytes: u64,
    /// Hash buckets (or edge segments) spilled to disk under a memory
    /// budget; 0 means fully resident.
    pub spilled_buckets: u64,
}

impl StoreFootprint {
    /// Total resident bytes across arena, index, and edges.
    pub fn total_bytes(&self) -> u64 {
        self.arena_bytes + self.index_bytes + self.edge_bytes
    }

    /// Adds another footprint's bytes into this one (used when a
    /// checker accumulates several graph builds into one stats value).
    pub fn accumulate(&mut self, other: &StoreFootprint) {
        self.arena_bytes += other.arena_bytes;
        self.index_bytes += other.index_bytes;
        self.edge_bytes += other.edge_bytes;
        self.spilled_buckets += other.spilled_buckets;
    }
}

// ---------------------------------------------------------------------------
// Phases and events
// ---------------------------------------------------------------------------

/// The engine phases that emit spans. Closed set so the JSONL stream
/// round-trips exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The memoizing safety DFS (`explore`/`explore_sym`).
    SafetyDfs,
    /// A whole progress check: graph build plus back-propagation.
    ProgressCheck,
    /// The BFS graph build inside a progress check.
    ProgressBfs,
    /// The `can_finish` back-propagation over the reversed graph.
    BackPropagation,
    /// A whole liveness check: all victim sets, graphs, and witnesses.
    LivenessCheck,
    /// One BFS graph build inside a liveness check (per victim set or
    /// the exact fallback graph).
    LivenessGraph,
    /// Fair-SCC decomposition and starvation search over one graph.
    SccAnalysis,
    /// Lasso/bypass witness extraction and validation.
    WitnessValidation,
    /// Control-automaton extraction (the `FutureIndex` build or a
    /// direct `extract_automaton` call).
    ExtractAutomaton,
    /// The reduction-hook lint (`lint_model`).
    Lint,
}

impl Phase {
    /// The stable string name used in the JSONL stream.
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::SafetyDfs => "safety-dfs",
            Phase::ProgressCheck => "progress-check",
            Phase::ProgressBfs => "progress-bfs",
            Phase::BackPropagation => "back-propagation",
            Phase::LivenessCheck => "liveness-check",
            Phase::LivenessGraph => "liveness-graph",
            Phase::SccAnalysis => "scc-analysis",
            Phase::WitnessValidation => "witness-validation",
            Phase::ExtractAutomaton => "extract-automaton",
            Phase::Lint => "lint",
        }
    }

    /// Parses a phase name produced by [`Phase::as_str`].
    pub fn parse(s: &str) -> Option<Phase> {
        Some(match s {
            "safety-dfs" => Phase::SafetyDfs,
            "progress-check" => Phase::ProgressCheck,
            "progress-bfs" => Phase::ProgressBfs,
            "back-propagation" => Phase::BackPropagation,
            "liveness-check" => Phase::LivenessCheck,
            "liveness-graph" => Phase::LivenessGraph,
            "scc-analysis" => Phase::SccAnalysis,
            "witness-validation" => Phase::WitnessValidation,
            "extract-automaton" => Phase::ExtractAutomaton,
            "lint" => Phase::Lint,
            _ => return None,
        })
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One periodic progress sample of a running traversal.
///
/// `elapsed_ns` is relative to the enclosing span's start;
/// `states_per_sec` is the cumulative rate `states / elapsed` (integer,
/// so snapshots stay `Eq` and round-trip exactly through JSON).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Snapshot {
    /// States interned so far.
    pub states: u64,
    /// Transitions taken so far.
    pub transitions: u64,
    /// Current frontier length (DFS stack depth or BFS queue length).
    pub frontier: u64,
    /// Current DFS path depth (0 for BFS).
    pub depth: u64,
    /// Successor states pruned by the ample-set (POR) reduction.
    pub states_pruned_por: u64,
    /// States merged into a symmetry orbit representative.
    pub orbits_merged: u64,
    /// Transitions skipped by dynamic sleep sets (nonzero only in the
    /// safety DFS under `MayAccessMode::Dynamic`).
    pub transitions_slept: u64,
    /// Store/index/edge footprint at the sample point.
    pub footprint: StoreFootprint,
    /// Nanoseconds since the enclosing span started.
    pub elapsed_ns: u64,
    /// Cumulative throughput: `states * 1e9 / elapsed_ns` (0 when no
    /// time has passed).
    pub states_per_sec: u64,
}

/// One telemetry event. The JSONL encoding is one object per line with
/// an `"event"` discriminant; see [`TelemetryEvent::to_json_line`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TelemetryEvent {
    /// A phase began.
    SpanStart {
        /// Which phase.
        phase: Phase,
        /// Clock reading at the start.
        at_ns: u64,
    },
    /// A phase ended, with the work attributed to it.
    SpanEnd {
        /// Which phase.
        phase: Phase,
        /// Clock reading at the end.
        at_ns: u64,
        /// Wall time from start to end.
        elapsed_ns: u64,
        /// States attributed to this phase.
        states: u64,
        /// Transitions attributed to this phase.
        transitions: u64,
    },
    /// A periodic progress sample inside a phase.
    Snapshot {
        /// Which phase.
        phase: Phase,
        /// Clock reading at the sample.
        at_ns: u64,
        /// The sample itself.
        snap: Snapshot,
    },
    /// The spilled-bucket count grew since the previous sample (the
    /// visited set or edge arena spilled under a memory budget).
    Spill {
        /// Which phase.
        phase: Phase,
        /// Clock reading at the detecting sample.
        at_ns: u64,
        /// Total spilled buckets/segments after the growth.
        spilled_buckets: u64,
    },
    /// The index footprint grew since the previous sample (an
    /// `OpenIndex` doubling or chained-table growth).
    IndexGrowth {
        /// Which phase.
        phase: Phase,
        /// Clock reading at the detecting sample.
        at_ns: u64,
        /// Index bytes after the growth.
        index_bytes: u64,
    },
}

impl TelemetryEvent {
    /// The phase this event belongs to.
    pub fn phase(&self) -> Phase {
        match self {
            TelemetryEvent::SpanStart { phase, .. }
            | TelemetryEvent::SpanEnd { phase, .. }
            | TelemetryEvent::Snapshot { phase, .. }
            | TelemetryEvent::Spill { phase, .. }
            | TelemetryEvent::IndexGrowth { phase, .. } => *phase,
        }
    }

    /// Encodes the event as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        match self {
            TelemetryEvent::SpanStart { phase, at_ns } => {
                format!("{{\"event\":\"span_start\",\"phase\":\"{phase}\",\"at_ns\":{at_ns}}}")
            }
            TelemetryEvent::SpanEnd {
                phase,
                at_ns,
                elapsed_ns,
                states,
                transitions,
            } => format!(
                "{{\"event\":\"span_end\",\"phase\":\"{phase}\",\"at_ns\":{at_ns},\
                 \"elapsed_ns\":{elapsed_ns},\"states\":{states},\"transitions\":{transitions}}}"
            ),
            TelemetryEvent::Snapshot { phase, at_ns, snap } => format!(
                "{{\"event\":\"snapshot\",\"phase\":\"{phase}\",\"at_ns\":{at_ns},\
                 \"elapsed_ns\":{},\"states\":{},\"transitions\":{},\"frontier\":{},\
                 \"depth\":{},\"states_pruned_por\":{},\"orbits_merged\":{},\
                 \"transitions_slept\":{},\"states_per_sec\":{},\"arena_bytes\":{},\
                 \"index_bytes\":{},\"edge_bytes\":{},\"spilled_buckets\":{}}}",
                snap.elapsed_ns,
                snap.states,
                snap.transitions,
                snap.frontier,
                snap.depth,
                snap.states_pruned_por,
                snap.orbits_merged,
                snap.transitions_slept,
                snap.states_per_sec,
                snap.footprint.arena_bytes,
                snap.footprint.index_bytes,
                snap.footprint.edge_bytes,
                snap.footprint.spilled_buckets,
            ),
            TelemetryEvent::Spill {
                phase,
                at_ns,
                spilled_buckets,
            } => format!(
                "{{\"event\":\"spill\",\"phase\":\"{phase}\",\"at_ns\":{at_ns},\
                 \"spilled_buckets\":{spilled_buckets}}}"
            ),
            TelemetryEvent::IndexGrowth {
                phase,
                at_ns,
                index_bytes,
            } => format!(
                "{{\"event\":\"index_growth\",\"phase\":\"{phase}\",\"at_ns\":{at_ns},\
                 \"index_bytes\":{index_bytes}}}"
            ),
        }
    }

    /// Parses a line produced by [`TelemetryEvent::to_json_line`].
    /// Returns `None` for anything else (including blank lines).
    pub fn parse_json_line(line: &str) -> Option<TelemetryEvent> {
        let kind = json_str(line, "event")?;
        let phase = Phase::parse(json_str(line, "phase")?)?;
        let at_ns = json_u64(line, "at_ns")?;
        Some(match kind {
            "span_start" => TelemetryEvent::SpanStart { phase, at_ns },
            "span_end" => TelemetryEvent::SpanEnd {
                phase,
                at_ns,
                elapsed_ns: json_u64(line, "elapsed_ns")?,
                states: json_u64(line, "states")?,
                transitions: json_u64(line, "transitions")?,
            },
            "snapshot" => TelemetryEvent::Snapshot {
                phase,
                at_ns,
                snap: Snapshot {
                    states: json_u64(line, "states")?,
                    transitions: json_u64(line, "transitions")?,
                    frontier: json_u64(line, "frontier")?,
                    depth: json_u64(line, "depth")?,
                    states_pruned_por: json_u64(line, "states_pruned_por")?,
                    orbits_merged: json_u64(line, "orbits_merged")?,
                    // Absent in pre-dynamic streams: default to 0 so old
                    // JSONL artifacts still parse.
                    transitions_slept: json_u64(line, "transitions_slept").unwrap_or(0),
                    footprint: StoreFootprint {
                        arena_bytes: json_u64(line, "arena_bytes")?,
                        index_bytes: json_u64(line, "index_bytes")?,
                        edge_bytes: json_u64(line, "edge_bytes")?,
                        spilled_buckets: json_u64(line, "spilled_buckets")?,
                    },
                    elapsed_ns: json_u64(line, "elapsed_ns")?,
                    states_per_sec: json_u64(line, "states_per_sec")?,
                },
            },
            "spill" => TelemetryEvent::Spill {
                phase,
                at_ns,
                spilled_buckets: json_u64(line, "spilled_buckets")?,
            },
            "index_growth" => TelemetryEvent::IndexGrowth {
                phase,
                at_ns,
                index_bytes: json_u64(line, "index_bytes")?,
            },
            _ => return None,
        })
    }
}

/// Extracts the raw text of `"key":<value>` from one of our own JSON
/// lines. Values are unsigned integers or phase/kind names, neither of
/// which contains `,` `}` or escapes, so a scan suffices — this is a
/// decoder for this module's encoder, not a general JSON parser.
fn json_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let mut pat = String::with_capacity(key.len() + 3);
    pat.push('"');
    pat.push_str(key);
    pat.push_str("\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim())
}

fn json_u64(line: &str, key: &str) -> Option<u64> {
    json_raw(line, key)?.parse().ok()
}

fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    json_raw(line, key)?
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
}

// ---------------------------------------------------------------------------
// Observer trait and sinks
// ---------------------------------------------------------------------------

/// A telemetry sink. Implementations must be passive: observe the
/// event, never feed anything back into the engine.
pub trait Observer {
    /// Receives one event, in emission order.
    fn on_event(&mut self, event: &TelemetryEvent);
}

/// A sink that drops every event. The default configuration is simply
/// *no sinks* (cheaper still); this exists for explicitness in tests
/// and docs.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl Observer for NoopSink {
    fn on_event(&mut self, _event: &TelemetryEvent) {}
}

/// Human-readable progress lines on stderr, rate-limited to one beat
/// per interval.
///
/// Writes through [`io::stderr`]'s `Write` impl directly (not the
/// `eprintln!` machinery), so beats stay visible even inside the
/// libtest harness, which captures macro output — this is what keeps
/// the CI exhaustive job's hour-long runs from looking hung.
#[derive(Debug)]
pub struct HeartbeatSink {
    min_interval_ns: u64,
    last_beat_ns: Option<u64>,
}

impl HeartbeatSink {
    /// A heartbeat printing at most one snapshot line per
    /// `interval_secs` (span ends shorter than the interval are
    /// suppressed too, so fast phases stay quiet).
    pub fn stderr(interval_secs: f64) -> Self {
        HeartbeatSink {
            min_interval_ns: (interval_secs.max(0.0) * 1e9) as u64,
            last_beat_ns: None,
        }
    }

    fn beat(&mut self, at_ns: u64) -> bool {
        match self.last_beat_ns {
            Some(last) if at_ns.saturating_sub(last) < self.min_interval_ns => false,
            _ => {
                self.last_beat_ns = Some(at_ns);
                true
            }
        }
    }
}

/// `123456789` -> `"123.5M"`, keeping heartbeat lines scannable.
fn fmt_count(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.1}KiB", b as f64 / 1024.0)
    }
}

impl Observer for HeartbeatSink {
    fn on_event(&mut self, event: &TelemetryEvent) {
        let line = match event {
            TelemetryEvent::Snapshot { phase, at_ns, snap } if self.beat(*at_ns) => {
                format!(
                    "[cfc] {phase:<18} {:>8} states  {:>8} trans  {:>7} st/s  \
                     frontier {:>6}  depth {:>4}  mem {:>9}  spills {}",
                    fmt_count(snap.states),
                    fmt_count(snap.transitions),
                    fmt_count(snap.states_per_sec),
                    fmt_count(snap.frontier),
                    snap.depth,
                    fmt_bytes(snap.footprint.total_bytes()),
                    snap.footprint.spilled_buckets,
                )
            }
            TelemetryEvent::SpanEnd {
                phase,
                elapsed_ns,
                states,
                transitions,
                ..
            } if *elapsed_ns >= self.min_interval_ns => format!(
                "[cfc] {phase:<18} done in {:.1}s  ({} states, {} transitions)",
                *elapsed_ns as f64 / 1e9,
                fmt_count(*states),
                fmt_count(*transitions),
            ),
            TelemetryEvent::Spill {
                phase,
                spilled_buckets,
                ..
            } => format!("[cfc] {phase:<18} spilled to disk ({spilled_buckets} buckets total)"),
            _ => return,
        };
        // Best-effort: a full stderr must never fail the verification.
        let _ = writeln!(io::stderr(), "{line}");
    }
}

/// A machine-readable sink: one JSON object per line.
pub struct JsonlSink<W: Write> {
    out: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        JsonlSink { out }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl JsonlSink<io::BufWriter<File>> {
    /// Creates (truncating) a JSONL file at `path`.
    pub fn create(path: &str) -> io::Result<Self> {
        Ok(JsonlSink::new(io::BufWriter::new(File::create(path)?)))
    }

    /// Opens `path` for appending, creating it if absent.
    pub fn append(path: &str) -> io::Result<Self> {
        let f = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink::new(io::BufWriter::new(f)))
    }
}

impl<W: Write> fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl<W: Write> Observer for JsonlSink<W> {
    fn on_event(&mut self, event: &TelemetryEvent) {
        // Best-effort, and flushed on span ends so `tail -f` works.
        let _ = writeln!(self.out, "{}", event.to_json_line());
        if matches!(event, TelemetryEvent::SpanEnd { .. }) {
            let _ = self.out.flush();
        }
    }
}

/// An in-memory sink for tests. Cloning shares the underlying buffer,
/// so keep one handle and pass a clone to [`Telemetry::with_sink`].
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    events: Rc<RefCell<Vec<TelemetryEvent>>>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// A copy of everything recorded so far.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events.borrow().clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<TelemetryEvent> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }
}

impl Observer for Recorder {
    fn on_event(&mut self, event: &TelemetryEvent) {
        self.events.borrow_mut().push(event.clone());
    }
}

// ---------------------------------------------------------------------------
// The Telemetry handle and ambient installation
// ---------------------------------------------------------------------------

type SinkHandle = Rc<RefCell<dyn Observer>>;

/// A bundle of sinks, a clock, and a sampling stride. Cloning is cheap
/// (reference counts); the default is inert — no sinks, wall clock,
/// [`DEFAULT_STRIDE`].
#[derive(Clone, Default)]
pub struct Telemetry {
    sinks: Vec<SinkHandle>,
    // Shared across clones (the drivers clone the ambient handle per
    // entry), so one lazily-installed wall clock times every span of a
    // run and `at_ns` is monotone across the whole event stream.
    clock: Rc<RefCell<Option<Rc<dyn Clock>>>>,
    stride: Option<u64>,
    // Set once `runtime()` has attached the CFC_PROGRESS /
    // CFC_TELEMETRY_JSONL sinks, so a driver entered under an
    // already-instrumented wrapper does not attach them twice.
    env_attached: bool,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("sinks", &self.sinks.len())
            .field("clock", &self.clock.borrow())
            .field("stride", &self.stride)
            .finish()
    }
}

impl Telemetry {
    /// An inert handle: no sinks, nothing emitted.
    pub fn off() -> Self {
        Telemetry::default()
    }

    /// An empty handle to configure with the `with_*` builders.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Attaches a sink. Multiple sinks all receive every event.
    pub fn with_sink(mut self, sink: impl Observer + 'static) -> Self {
        self.sinks.push(Rc::new(RefCell::new(sink)));
        self
    }

    /// Substitutes the clock (tests inject a
    /// [`ManualClock`](cfc_core::ManualClock) here; share it by passing
    /// an `Rc` clone, which implements [`Clock`] by deref).
    pub fn with_clock(self, clock: impl Clock + 'static) -> Self {
        *self.clock.borrow_mut() = Some(Rc::new(clock));
        self
    }

    /// Sets the expansions-per-sample stride (must be nonzero).
    pub fn with_stride(mut self, stride: u64) -> Self {
        assert!(stride > 0, "telemetry stride must be nonzero");
        self.stride = Some(stride);
        self
    }

    /// True when at least one sink is attached.
    pub fn is_active(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// The configured clock. When none was injected, a [`WallClock`]
    /// is installed on first use and shared with every clone of this
    /// handle, so all spans of a run read one coherent timeline.
    pub fn clock(&self) -> Rc<dyn Clock> {
        if let Some(c) = &*self.clock.borrow() {
            return c.clone();
        }
        let wall: Rc<dyn Clock> = Rc::new(WallClock::new());
        *self.clock.borrow_mut() = Some(wall.clone());
        wall
    }

    /// Opens a phase span: emits [`TelemetryEvent::SpanStart`] (when
    /// active) and returns the guard that samples, closes the span,
    /// and measures its wall time. The guard emits a balancing
    /// [`TelemetryEvent::SpanEnd`] on drop if not finished explicitly.
    pub fn span(&self, phase: Phase) -> PhaseSpan {
        let clock = self.clock();
        let start_ns = clock.now_ns();
        let span = PhaseSpan {
            tel: self.clone(),
            clock,
            phase,
            start_ns,
            stride: self.stride.unwrap_or(DEFAULT_STRIDE),
            countdown: self.stride.unwrap_or(DEFAULT_STRIDE),
            last_states: 0,
            last_transitions: 0,
            last_footprint: StoreFootprint::default(),
            finished: false,
        };
        if span.active() {
            span.tel.emit(&TelemetryEvent::SpanStart {
                phase,
                at_ns: start_ns,
            });
        }
        span
    }

    fn emit(&self, event: &TelemetryEvent) {
        for sink in &self.sinks {
            sink.borrow_mut().on_event(event);
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Telemetry> = RefCell::new(Telemetry::off());
}

/// Installs `tel` as this thread's ambient telemetry for the duration
/// of `f`. Every driver entered inside `f` — directly or through the
/// `checks` wrappers — emits its events to `tel`'s sinks. Nests; the
/// previous handle is restored on exit (including unwinds).
pub fn with_telemetry<T>(tel: &Telemetry, f: impl FnOnce() -> T) -> T {
    let _restore = install(tel);
    f()
}

/// RAII form of [`with_telemetry`] for the crate-internal check
/// wrappers: installs `tel` ambiently until the guard drops.
#[derive(Debug)]
pub(crate) struct Installed(Option<Telemetry>);

impl Drop for Installed {
    fn drop(&mut self) {
        let prev = self.0.take().expect("restore exactly once");
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

pub(crate) fn install(tel: &Telemetry) -> Installed {
    let prev = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), tel.clone()));
    Installed(Some(prev))
}

/// A clone of this thread's ambient telemetry handle.
pub fn current() -> Telemetry {
    CURRENT.with(|c| c.borrow().clone())
}

/// The handle a driver actually runs under: the ambient handle, plus a
/// stderr heartbeat when the config or the `CFC_PROGRESS` environment
/// variable asks for one, plus a JSONL sink when
/// `CFC_TELEMETRY_JSONL` names a file. Called once per driver entry,
/// never in a hot loop.
pub(crate) fn runtime(progress: bool) -> Telemetry {
    let mut tel = current();
    if tel.env_attached {
        return tel;
    }
    let env = std::env::var("CFC_PROGRESS").ok();
    let env_on = env
        .as_deref()
        .is_some_and(|v| !v.is_empty() && v != "0" && v != "off" && v != "false");
    if progress || env_on {
        let interval = env
            .as_deref()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|s| *s > 0.0)
            .unwrap_or(5.0);
        tel = tel.with_sink(HeartbeatSink::stderr(interval));
    }
    if let Ok(path) = std::env::var("CFC_TELEMETRY_JSONL") {
        if !path.is_empty() {
            if let Ok(sink) = JsonlSink::append(&path) {
                tel = tel.with_sink(sink);
            }
        }
    }
    tel.env_attached = true;
    tel
}

// ---------------------------------------------------------------------------
// Phase spans
// ---------------------------------------------------------------------------

/// The live counters a driver exposes at a sample point. Cheap to
/// build: every field is an already-maintained counter or an O(1)
/// accessor; no allocation, no syscall.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sample {
    /// States interned so far.
    pub states: u64,
    /// Transitions taken so far.
    pub transitions: u64,
    /// Current frontier length.
    pub frontier: u64,
    /// Current DFS depth (0 for BFS).
    pub depth: u64,
    /// POR-pruned successor count so far.
    pub states_pruned_por: u64,
    /// Symmetry-merged state count so far.
    pub orbits_merged: u64,
    /// Transitions skipped by dynamic sleep sets so far.
    pub transitions_slept: u64,
    /// Current store footprint.
    pub footprint: StoreFootprint,
}

/// An open phase span: created by [`Telemetry::span`], sampled with
/// [`PhaseSpan::tick`], closed with [`PhaseSpan::finish`] (or by drop,
/// which emits a balancing end event with the last sampled counters).
pub struct PhaseSpan {
    tel: Telemetry,
    clock: Rc<dyn Clock>,
    phase: Phase,
    start_ns: u64,
    stride: u64,
    countdown: u64,
    last_states: u64,
    last_transitions: u64,
    last_footprint: StoreFootprint,
    finished: bool,
}

impl fmt::Debug for PhaseSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhaseSpan")
            .field("phase", &self.phase)
            .field("active", &self.active())
            .field("start_ns", &self.start_ns)
            .finish_non_exhaustive()
    }
}

impl PhaseSpan {
    fn active(&self) -> bool {
        self.tel.is_active()
    }

    /// The hot-loop hook: call once per expansion. Decrements a
    /// countdown and returns immediately until the stride elapses;
    /// only then is `probe` invoked and the clock read. With no sink
    /// attached the cost is one branch and `probe` is never called.
    #[inline]
    pub fn tick(&mut self, probe: impl FnOnce() -> Sample) {
        if !self.active() {
            return;
        }
        self.countdown -= 1;
        if self.countdown > 0 {
            return;
        }
        self.countdown = self.stride;
        let now = self.clock.now_ns();
        self.emit_sample(probe(), now);
    }

    /// Wall time elapsed on this span so far. Reads the clock.
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now_ns().saturating_sub(self.start_ns)
    }

    /// Closes the span: emits one final [`TelemetryEvent::Snapshot`]
    /// carrying `final_sample` plus the [`TelemetryEvent::SpanEnd`],
    /// all stamped with a single clock reading, and returns the span's
    /// wall time in nanoseconds. The final snapshot therefore agrees
    /// exactly with the stats a driver returns when it stores this
    /// value as its `wall_ns`.
    pub fn finish(mut self, final_sample: Sample) -> u64 {
        let now = self.clock.now_ns();
        let elapsed = now.saturating_sub(self.start_ns);
        if self.active() {
            self.emit_sample(final_sample, now);
            self.tel.emit(&TelemetryEvent::SpanEnd {
                phase: self.phase,
                at_ns: now,
                elapsed_ns: elapsed,
                states: final_sample.states,
                transitions: final_sample.transitions,
            });
        }
        self.finished = true;
        elapsed
    }

    /// Emits spill/index-growth events derived from footprint deltas,
    /// then the snapshot itself. `now` is a clock reading taken by the
    /// caller so one reading can stamp a snapshot and a span end.
    fn emit_sample(&mut self, s: Sample, now: u64) {
        let elapsed = now.saturating_sub(self.start_ns);
        if s.footprint.spilled_buckets > self.last_footprint.spilled_buckets {
            self.tel.emit(&TelemetryEvent::Spill {
                phase: self.phase,
                at_ns: now,
                spilled_buckets: s.footprint.spilled_buckets,
            });
        }
        // The first sample sees the index's initial allocation, which
        // is not a growth event; report only subsequent doublings.
        if self.last_footprint.index_bytes > 0
            && s.footprint.index_bytes > self.last_footprint.index_bytes
        {
            self.tel.emit(&TelemetryEvent::IndexGrowth {
                phase: self.phase,
                at_ns: now,
                index_bytes: s.footprint.index_bytes,
            });
        }
        self.last_footprint = s.footprint;
        self.last_states = s.states;
        self.last_transitions = s.transitions;
        self.tel.emit(&TelemetryEvent::Snapshot {
            phase: self.phase,
            at_ns: now,
            snap: Snapshot {
                states: s.states,
                transitions: s.transitions,
                frontier: s.frontier,
                depth: s.depth,
                states_pruned_por: s.states_pruned_por,
                orbits_merged: s.orbits_merged,
                transitions_slept: s.transitions_slept,
                footprint: s.footprint,
                elapsed_ns: elapsed,
                states_per_sec: rate_per_sec(s.states, elapsed),
            },
        });
    }
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        if self.finished || !self.active() {
            return;
        }
        // Early exit (violation found, budget error): balance the
        // stream with the last sampled counters.
        let now = self.clock.now_ns();
        self.tel.emit(&TelemetryEvent::SpanEnd {
            phase: self.phase,
            at_ns: now,
            elapsed_ns: now.saturating_sub(self.start_ns),
            states: self.last_states,
            transitions: self.last_transitions,
        });
    }
}

/// Integer cumulative throughput: `states * 1e9 / elapsed_ns`, 0 when
/// no time has passed. Integer so stats and snapshots stay `Eq`.
pub fn rate_per_sec(states: u64, elapsed_ns: u64) -> u64 {
    if elapsed_ns == 0 {
        0
    } else {
        // Saturate: a sub-nanosecond-per-state reading (only reachable
        // with a manual clock) must not wrap.
        u64::try_from(u128::from(states) * 1_000_000_000 / u128::from(elapsed_ns))
            .unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::ManualClock;
    use std::rc::Rc;

    fn sample(states: u64) -> Sample {
        Sample {
            states,
            transitions: states.saturating_sub(1),
            frontier: 3,
            depth: 2,
            footprint: StoreFootprint {
                arena_bytes: states * 8,
                index_bytes: 64,
                edge_bytes: 0,
                spilled_buckets: 0,
            },
            ..Sample::default()
        }
    }

    #[test]
    fn json_round_trip_every_variant() {
        let events = vec![
            TelemetryEvent::SpanStart {
                phase: Phase::SafetyDfs,
                at_ns: 7,
            },
            TelemetryEvent::Snapshot {
                phase: Phase::ProgressBfs,
                at_ns: 120,
                snap: Snapshot {
                    states: 10,
                    transitions: 9,
                    frontier: 4,
                    depth: 0,
                    states_pruned_por: 2,
                    orbits_merged: 1,
                    transitions_slept: 3,
                    footprint: StoreFootprint {
                        arena_bytes: 80,
                        index_bytes: 64,
                        edge_bytes: 40,
                        spilled_buckets: 1,
                    },
                    elapsed_ns: 100,
                    states_per_sec: 100_000_000,
                },
            },
            TelemetryEvent::Spill {
                phase: Phase::LivenessGraph,
                at_ns: 50,
                spilled_buckets: 3,
            },
            TelemetryEvent::IndexGrowth {
                phase: Phase::SafetyDfs,
                at_ns: 60,
                index_bytes: 4096,
            },
            TelemetryEvent::SpanEnd {
                phase: Phase::WitnessValidation,
                at_ns: 200,
                elapsed_ns: 193,
                states: 10,
                transitions: 9,
            },
        ];
        for e in &events {
            let line = e.to_json_line();
            let back = TelemetryEvent::parse_json_line(&line)
                .unwrap_or_else(|| panic!("unparseable line: {line}"));
            assert_eq!(&back, e, "round trip through {line}");
        }
        assert_eq!(TelemetryEvent::parse_json_line(""), None);
        assert_eq!(TelemetryEvent::parse_json_line("{\"event\":\"bogus\"}"), None);
    }

    #[test]
    fn every_phase_name_round_trips() {
        for p in [
            Phase::SafetyDfs,
            Phase::ProgressCheck,
            Phase::ProgressBfs,
            Phase::BackPropagation,
            Phase::LivenessCheck,
            Phase::LivenessGraph,
            Phase::SccAnalysis,
            Phase::WitnessValidation,
            Phase::ExtractAutomaton,
            Phase::Lint,
        ] {
            assert_eq!(Phase::parse(p.as_str()), Some(p));
        }
        assert_eq!(Phase::parse("nonsense"), None);
    }

    #[test]
    fn span_samples_on_stride_and_finishes_exactly() {
        let clock = Rc::new(ManualClock::new());
        let rec = Recorder::new();
        let tel = Telemetry::new()
            .with_sink(rec.clone())
            .with_clock(clock.clone())
            .with_stride(4);
        let span_wall;
        {
            let mut span = tel.span(Phase::SafetyDfs);
            for i in 1..=10u64 {
                clock.advance(10);
                span.tick(|| sample(i));
            }
            clock.advance(10);
            span_wall = span.finish(sample(10));
        }
        assert_eq!(span_wall, 110);
        let events = rec.events();
        // SpanStart, ticks 4 and 8 sampled, the final snapshot, SpanEnd.
        let kinds: Vec<_> = events
            .iter()
            .map(|e| match e {
                TelemetryEvent::SpanStart { .. } => "start",
                TelemetryEvent::Snapshot { .. } => "snap",
                TelemetryEvent::SpanEnd { .. } => "end",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, ["start", "snap", "snap", "snap", "end"]);
        let TelemetryEvent::Snapshot { snap: last, .. } = &events[3] else {
            panic!("expected final snapshot");
        };
        assert_eq!(last.states, 10);
        assert_eq!(last.elapsed_ns, 110);
        assert_eq!(last.states_per_sec, rate_per_sec(10, 110));
        let TelemetryEvent::SpanEnd {
            elapsed_ns, states, ..
        } = &events[4]
        else {
            panic!("expected span end");
        };
        assert_eq!(*elapsed_ns, 110);
        assert_eq!(*states, 10);
    }

    #[test]
    fn dropped_span_balances_the_stream() {
        let rec = Recorder::new();
        let tel = Telemetry::new()
            .with_sink(rec.clone())
            .with_clock(ManualClock::new());
        {
            let mut span = tel.span(Phase::LivenessGraph);
            span.tick(|| sample(1)); // stride not reached: no snapshot
        } // dropped without finish
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], TelemetryEvent::SpanStart { .. }));
        assert!(matches!(events[1], TelemetryEvent::SpanEnd { .. }));
    }

    #[test]
    fn spill_and_index_growth_derived_from_footprint_deltas() {
        let rec = Recorder::new();
        let tel = Telemetry::new()
            .with_sink(rec.clone())
            .with_clock(ManualClock::new())
            .with_stride(1);
        let mut span = tel.span(Phase::ProgressBfs);
        let mut s = sample(1);
        span.tick(|| s); // first sample: initial allocation, no growth events
        s.footprint.index_bytes = 128;
        s.footprint.spilled_buckets = 2;
        span.tick(|| s);
        span.finish(s);
        let events = rec.events();
        assert!(events
            .iter()
            .any(|e| matches!(e, TelemetryEvent::Spill { spilled_buckets: 2, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TelemetryEvent::IndexGrowth { index_bytes: 128, .. })));
        // Exactly one of each: unchanged footprints emit nothing.
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, TelemetryEvent::Spill { .. }
                    | TelemetryEvent::IndexGrowth { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn ambient_handle_nests_and_restores() {
        assert!(!current().is_active());
        let rec = Recorder::new();
        let tel = Telemetry::new().with_sink(rec.clone());
        with_telemetry(&tel, || {
            assert!(current().is_active());
            with_telemetry(&Telemetry::off(), || {
                assert!(!current().is_active());
            });
            assert!(current().is_active());
        });
        assert!(!current().is_active());
    }

    #[test]
    fn inactive_span_never_probes_but_still_measures() {
        let clock = Rc::new(ManualClock::new());
        let tel = Telemetry::off().with_clock(clock.clone());
        let mut span = tel.span(Phase::SafetyDfs);
        clock.advance(42);
        span.tick(|| panic!("probe must not run without sinks"));
        assert_eq!(span.finish(Sample::default()), 42);
    }

    #[test]
    fn rate_is_cumulative_and_guarded() {
        assert_eq!(rate_per_sec(100, 0), 0);
        assert_eq!(rate_per_sec(100, 1_000_000_000), 100);
        assert_eq!(rate_per_sec(1, 2_000_000_000), 0);
        assert_eq!(rate_per_sec(u64::MAX, 1), u64::MAX);
    }
}
