//! Wait-free naming registries on real atomics (Section 3 in hardware).
//!
//! `AtomicBool::swap(true)` *is* the paper's `test-and-set`, so both
//! Theorem 4.3 (linear scan) and Theorem 4.4 (binary search + scan) run
//! natively: threads claim unique names from `1..=n` without locks, and a
//! thread that stalls or dies mid-claim never blocks the others.

use std::sync::atomic::{AtomicBool, Ordering::SeqCst};

/// A wait-free name registry assigning names `1..=capacity`.
///
/// # Examples
///
/// ```
/// use cfc_native::NamingRegistry;
/// use std::collections::HashSet;
///
/// let registry = NamingRegistry::new(8);
/// let names = std::thread::scope(|s| {
///     let handles: Vec<_> = (0..8)
///         .map(|_| s.spawn(|| registry.claim_search().unwrap()))
///         .collect();
///     handles.into_iter().map(|h| h.join().unwrap()).collect::<HashSet<_>>()
/// });
/// assert_eq!(names.len(), 8); // all distinct
/// assert!(names.iter().all(|&x| (1..=8).contains(&x)));
/// ```
#[derive(Debug)]
pub struct NamingRegistry {
    /// `capacity - 1` claim bits; the implicit last name needs no bit.
    bits: Box<[AtomicBool]>,
}

impl NamingRegistry {
    /// Creates a registry for `capacity ≥ 1` names.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "need at least one name");
        NamingRegistry {
            bits: (0..capacity - 1).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// The name-space size.
    pub fn capacity(&self) -> usize {
        self.bits.len() + 1
    }

    /// Claims a name by linear scan (Theorem 4.3): worst case
    /// `capacity − 1` shared accesses, `{test-and-set}` only.
    ///
    /// Returns `None` if every name (including the implicit last one) has
    /// been claimed — which cannot happen with at most `capacity`
    /// claimants.
    pub fn claim_scan(&self) -> Option<usize> {
        self.scan_from(0)
    }

    /// Claims a name by binary search plus scan (Theorem 4.4):
    /// `O(log capacity)` accesses when claims don't race, `{read,
    /// test-and-set}`.
    ///
    /// Returns `None` under the same (impossible within capacity)
    /// exhaustion condition as [`NamingRegistry::claim_scan`].
    pub fn claim_search(&self) -> Option<usize> {
        if self.bits.is_empty() {
            return Some(1);
        }
        // Binary search for the first unset bit: invariant: bits < lo are
        // all set; position hi (or the virtual sentinel at len) is unset
        // as of its read.
        let (mut lo, mut hi) = (0usize, self.bits.len());
        while hi - lo >= 2 {
            let mid = (lo + hi) / 2;
            if self.bits[mid].load(SeqCst) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
            if lo >= self.bits.len() {
                break;
            }
        }
        self.scan_from(lo.min(self.bits.len().saturating_sub(1)))
    }

    fn scan_from(&self, start: usize) -> Option<usize> {
        for i in start..self.bits.len() {
            // swap(true) = test-and-set; old value false means we won bit i.
            if !self.bits[i].swap(true, SeqCst) {
                return Some(i + 1);
            }
        }
        // All visible bits taken: take the implicit last name if we are
        // the first to exhaust the array. Guard with a dedicated claim on
        // the last conceptual slot: since only `capacity` threads may
        // participate, reaching here un-raced is guaranteed unique.
        if start == 0 || self.all_set() {
            Some(self.capacity())
        } else {
            None
        }
    }

    fn all_set(&self) -> bool {
        self.bits.iter().all(|b| b.load(SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn claim_all(registry: &NamingRegistry, threads: usize, search: bool) -> HashSet<usize> {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(move || {
                        if search {
                            registry.claim_search().unwrap()
                        } else {
                            registry.claim_scan().unwrap()
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn scan_names_are_unique_and_complete() {
        for threads in [1usize, 2, 4, 8] {
            let registry = NamingRegistry::new(threads);
            let names = claim_all(&registry, threads, false);
            assert_eq!(names.len(), threads);
            assert!(names.iter().all(|&x| (1..=threads).contains(&x)));
        }
    }

    #[test]
    fn search_names_are_unique_and_complete() {
        for threads in [1usize, 2, 5, 8, 16] {
            let registry = NamingRegistry::new(threads);
            let names = claim_all(&registry, threads, true);
            assert_eq!(names.len(), threads);
            assert!(names.iter().all(|&x| (1..=threads).contains(&x)));
        }
    }

    #[test]
    fn sequential_claims_are_in_order() {
        let registry = NamingRegistry::new(4);
        assert_eq!(registry.claim_search(), Some(1));
        assert_eq!(registry.claim_search(), Some(2));
        assert_eq!(registry.claim_scan(), Some(3));
        assert_eq!(registry.claim_scan(), Some(4));
    }

    #[test]
    fn under_capacity_registry_mixed_claims() {
        // Fewer claimants than capacity: mixed strategies stay unique.
        let registry = NamingRegistry::new(16);
        let names = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let registry = &registry;
                    s.spawn(move || {
                        if i % 2 == 0 {
                            registry.claim_scan().unwrap()
                        } else {
                            registry.claim_search().unwrap()
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<HashSet<_>>()
        });
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn capacity_one() {
        let registry = NamingRegistry::new(1);
        assert_eq!(registry.claim_scan(), Some(1));
        assert_eq!(registry.claim_search(), Some(1));
        assert_eq!(registry.capacity(), 1);
    }
}
