//! Test-and-set spinlocks (baselines for the native benches).
//!
//! The paper's Section 3 primitives, in hardware form: `test-and-set` is
//! `AtomicBool::swap`. The TTAS variant spins on a plain load until the
//! lock looks free (one remote access per coherence invalidation instead
//! of one per loop iteration — the register-complexity intuition of
//! Section 1.2 in silicon), optionally with exponential backoff.

use std::sync::atomic::{AtomicBool, Ordering::SeqCst};

use crate::backoff::Backoff;
use crate::lock::SlottedMutex;

/// Spin strategy for [`TasLock`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpinStrategy {
    /// Re-execute `test-and-set` in a tight loop.
    Tas,
    /// Spin on a read until free, then `test-and-set` (TTAS).
    Ttas,
    /// TTAS plus exponential backoff between attempts.
    TtasBackoff,
}

/// A test-and-set spinlock (identity-free: the slot is ignored).
#[derive(Debug)]
pub struct TasLock {
    flag: AtomicBool,
    strategy: SpinStrategy,
}

impl TasLock {
    /// Creates a lock with the given spin strategy.
    pub fn new(strategy: SpinStrategy) -> Self {
        TasLock {
            flag: AtomicBool::new(false),
            strategy,
        }
    }

    fn try_acquire(&self) -> bool {
        // swap(true) is the paper's test-and-set: sets the bit, returns
        // the old value; acquiring means the old value was 0.
        !self.flag.swap(true, SeqCst)
    }
}

impl SlottedMutex for TasLock {
    fn lock(&self, _slot: usize) {
        let mut backoff = Backoff::new();
        let mut spins = 0u32;
        loop {
            if self.try_acquire() {
                return;
            }
            match self.strategy {
                SpinStrategy::Tas => {
                    spins += 1;
                    if spins.is_multiple_of(64) {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
                SpinStrategy::Ttas => {
                    while self.flag.load(SeqCst) {
                        spins += 1;
                        if spins.is_multiple_of(64) {
                            std::thread::yield_now();
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                }
                SpinStrategy::TtasBackoff => {
                    backoff.pause();
                    while self.flag.load(SeqCst) {
                        backoff.pause();
                    }
                }
            }
        }
    }

    fn unlock(&self, _slot: usize) {
        self.flag.store(false, SeqCst);
    }

    fn slots(&self) -> usize {
        usize::MAX
    }

    fn name(&self) -> &'static str {
        match self.strategy {
            SpinStrategy::Tas => "tas",
            SpinStrategy::Ttas => "ttas",
            SpinStrategy::TtasBackoff => "ttas+backoff",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn hammer(mutex: &TasLock, threads: usize, iters: u64) -> u64 {
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for slot in 0..threads {
                let counter = &counter;
                s.spawn(move || {
                    for _ in 0..iters {
                        mutex.lock(slot);
                        let v = counter.load(SeqCst);
                        counter.store(v + 1, SeqCst);
                        mutex.unlock(slot);
                    }
                });
            }
        });
        counter.load(SeqCst)
    }

    #[test]
    fn all_strategies_protect_the_counter() {
        for strategy in [SpinStrategy::Tas, SpinStrategy::Ttas, SpinStrategy::TtasBackoff] {
            let m = TasLock::new(strategy);
            assert_eq!(hammer(&m, 4, 2_000), 8_000, "{:?}", strategy);
        }
    }

    #[test]
    fn uncontended_acquire_is_one_access() {
        let m = TasLock::new(SpinStrategy::Ttas);
        assert!(m.try_acquire());
        assert!(!m.try_acquire());
        m.unlock(0);
        assert!(m.try_acquire());
    }
}
