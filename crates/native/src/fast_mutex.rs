//! Lamport's fast mutual exclusion on real atomics [Lam87].
//!
//! The contention-free fast path is exactly the paper's headline: five
//! shared accesses to enter, two to exit, touching three cache lines —
//! independent of the number of threads. All operations use `SeqCst`:
//! the algorithm's correctness argument (like Dekker's and Peterson's)
//! depends on every thread observing the `x`/`y` writes in a single total
//! order, which acquire/release alone does not provide.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};

use crate::backoff::Backoff;
use crate::lock::SlottedMutex;

/// Lamport's fast mutex for a fixed number of slots.
///
/// # Examples
///
/// ```
/// use cfc_native::{FastMutex, SlottedMutex};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let mutex = FastMutex::new(4);
/// let counter = AtomicU64::new(0);
/// std::thread::scope(|s| {
///     for slot in 0..4 {
///         let (mutex, counter) = (&mutex, &counter);
///         s.spawn(move || {
///             for _ in 0..100 {
///                 mutex.with(slot, || {
///                     let v = counter.load(Ordering::Relaxed);
///                     counter.store(v + 1, Ordering::Relaxed);
///                 });
///             }
///         });
///     }
/// });
/// assert_eq!(counter.load(Ordering::Relaxed), 400);
/// ```
#[derive(Debug)]
pub struct FastMutex {
    /// Last contender to announce (slot + 1; 0 = none).
    x: AtomicUsize,
    /// Current owner (slot + 1; 0 = free).
    y: AtomicUsize,
    /// Per-slot interest flags.
    b: Box<[AtomicBool]>,
    /// Spin with exponential backoff instead of bare spinning.
    backoff: bool,
}

impl FastMutex {
    /// Creates the mutex for `slots` participants, without backoff.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(slots: usize) -> Self {
        Self::build(slots, false)
    }

    /// Creates the mutex with exponential backoff on contention.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn with_backoff(slots: usize) -> Self {
        Self::build(slots, true)
    }

    fn build(slots: usize, backoff: bool) -> Self {
        assert!(slots >= 1, "need at least one slot");
        FastMutex {
            x: AtomicUsize::new(0),
            y: AtomicUsize::new(0),
            b: (0..slots).map(|_| AtomicBool::new(false)).collect(),
            backoff,
        }
    }

    fn wait(&self, backoff: &mut Backoff, cond: impl Fn() -> bool) {
        let mut spins = 0u32;
        while cond() {
            if self.backoff {
                backoff.pause();
            } else {
                spins += 1;
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

impl SlottedMutex for FastMutex {
    fn lock(&self, slot: usize) {
        assert!(slot < self.b.len(), "slot out of range");
        let id = slot + 1;
        let mut backoff = Backoff::new();
        loop {
            // start: b[i] := true; x := i
            self.b[slot].store(true, SeqCst);
            self.x.store(id, SeqCst);
            if self.y.load(SeqCst) != 0 {
                // Contention: back off until the lock looks free.
                self.b[slot].store(false, SeqCst);
                self.wait(&mut backoff, || self.y.load(SeqCst) != 0);
                continue;
            }
            self.y.store(id, SeqCst);
            if self.x.load(SeqCst) == id {
                return; // fast path: 5 accesses
            }
            // Slow path: another contender overwrote x.
            self.b[slot].store(false, SeqCst);
            for j in 0..self.b.len() {
                self.wait(&mut backoff, || self.b[j].load(SeqCst));
            }
            if self.y.load(SeqCst) == id {
                return;
            }
            self.wait(&mut backoff, || self.y.load(SeqCst) != 0);
        }
    }

    fn unlock(&self, slot: usize) {
        self.y.store(0, SeqCst);
        self.b[slot].store(false, SeqCst);
    }

    fn slots(&self) -> usize {
        self.b.len()
    }

    fn name(&self) -> &'static str {
        if self.backoff {
            "lamport-fast+backoff"
        } else {
            "lamport-fast"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn hammer<M: SlottedMutex>(mutex: &M, threads: usize, iters: u64) -> u64 {
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for slot in 0..threads {
                let counter = &counter;
                s.spawn(move || {
                    for _ in 0..iters {
                        mutex.lock(slot);
                        // Non-atomic-style read-modify-write under the lock.
                        let v = counter.load(SeqCst);
                        counter.store(v + 1, SeqCst);
                        mutex.unlock(slot);
                    }
                });
            }
        });
        counter.load(SeqCst)
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let mutex = FastMutex::new(4);
        assert_eq!(hammer(&mutex, 4, 2_000), 8_000);
    }

    #[test]
    fn counter_is_exact_with_backoff() {
        let mutex = FastMutex::with_backoff(4);
        assert_eq!(hammer(&mutex, 4, 2_000), 8_000);
    }

    #[test]
    fn single_thread_fast_path() {
        let mutex = FastMutex::new(1);
        assert_eq!(hammer(&mutex, 1, 10_000), 10_000);
    }

    #[test]
    fn is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FastMutex>();
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn rejects_bad_slot() {
        FastMutex::new(2).lock(2);
    }
}
