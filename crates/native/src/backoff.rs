//! Exponential backoff (Discussion section of the paper).
//!
//! "Good time complexity in the absence of contention can help achieve
//! good performance also in the presence of high contention, using a
//! technique called backoff: when a process notices contention it delays
//! itself for some time, giving other processes a chance to proceed."
//! Experiments with Lamport's algorithm plus backoff show the winner's
//! entry time staying close to the contention-free time at every
//! contention level [MS93]; the `backoff` bench reproduces that claim.

use rand::Rng;

/// Exponential backoff with optional jitter.
///
/// Each [`Backoff::pause`] spins for an exponentially growing number of
/// iterations (capped), yielding to the OS scheduler once the wait grows
/// past the spin threshold so single-core machines make progress too.
#[derive(Debug)]
pub struct Backoff {
    shift: u32,
    max_shift: u32,
    jitter: bool,
}

impl Backoff {
    /// The default cap: waits stop growing at `2^12` spin iterations.
    pub const DEFAULT_MAX_SHIFT: u32 = 12;
    /// Past this shift, the backoff yields to the OS instead of spinning.
    const YIELD_SHIFT: u32 = 7;

    /// Creates a backoff with the default cap and jitter enabled.
    pub fn new() -> Self {
        Backoff {
            shift: 0,
            max_shift: Self::DEFAULT_MAX_SHIFT,
            jitter: true,
        }
    }

    /// Creates a deterministic backoff (no jitter) with a custom cap.
    pub fn with_max_shift(max_shift: u32) -> Self {
        Backoff {
            shift: 0,
            max_shift,
            jitter: false,
        }
    }

    /// The current exponent (how many times the wait has doubled).
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Returns `true` once the wait has reached its cap.
    pub fn is_saturated(&self) -> bool {
        self.shift >= self.max_shift
    }

    /// Waits, then doubles the next wait (up to the cap).
    pub fn pause(&mut self) {
        let base = 1u64 << self.shift;
        let spins = if self.jitter {
            rand::thread_rng().gen_range(base / 2 + 1..=base)
        } else {
            base
        };
        if self.shift > Self::YIELD_SHIFT {
            std::thread::yield_now();
        }
        for _ in 0..spins {
            std::hint::spin_loop();
        }
        if self.shift < self.max_shift {
            self.shift += 1;
        }
    }

    /// Resets to the shortest wait (call after a successful acquisition).
    pub fn reset(&mut self) {
        self.shift = 0;
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_to_cap_and_resets() {
        let mut b = Backoff::with_max_shift(3);
        assert_eq!(b.shift(), 0);
        for _ in 0..10 {
            b.pause();
        }
        assert_eq!(b.shift(), 3);
        assert!(b.is_saturated());
        b.reset();
        assert_eq!(b.shift(), 0);
        assert!(!b.is_saturated());
    }

    #[test]
    fn jittered_backoff_also_saturates() {
        let mut b = Backoff::new();
        for _ in 0..Backoff::DEFAULT_MAX_SHIFT + 2 {
            b.pause();
        }
        assert!(b.is_saturated());
    }
}
