//! Lamport's bakery algorithm on real atomics — the Θ(n) fast-path
//! baseline.
//!
//! Deadlock-free and first-come-first-served, but even an uncontended
//! acquire scans every slot twice: the wall-clock embodiment of the
//! paper's motivation for contention-free complexity. Tickets are
//! `AtomicU64`; overflow is unreachable in practice.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};

use crate::lock::SlottedMutex;

/// The bakery mutex for a fixed set of slots.
#[derive(Debug)]
pub struct BakeryMutex {
    choosing: Box<[AtomicBool]>,
    number: Box<[AtomicU64]>,
}

impl BakeryMutex {
    /// Creates the mutex for `slots ≥ 1` participants.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(slots: usize) -> Self {
        assert!(slots >= 1, "need at least one slot");
        BakeryMutex {
            choosing: (0..slots).map(|_| AtomicBool::new(false)).collect(),
            number: (0..slots).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn spin(spins: &mut u32) {
        *spins += 1;
        if (*spins).is_multiple_of(64) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

impl SlottedMutex for BakeryMutex {
    fn lock(&self, slot: usize) {
        assert!(slot < self.number.len(), "slot out of range");
        self.choosing[slot].store(true, SeqCst);
        let max = self
            .number
            .iter()
            .map(|n| n.load(SeqCst))
            .max()
            .unwrap_or(0);
        let my_number = max + 1;
        self.number[slot].store(my_number, SeqCst);
        self.choosing[slot].store(false, SeqCst);

        let mut spins = 0u32;
        for j in 0..self.number.len() {
            while self.choosing[j].load(SeqCst) {
                Self::spin(&mut spins);
            }
            loop {
                let them = self.number[j].load(SeqCst);
                if them == 0 || (them, j) >= (my_number, slot) {
                    break;
                }
                Self::spin(&mut spins);
            }
        }
    }

    fn unlock(&self, slot: usize) {
        self.number[slot].store(0, SeqCst);
    }

    fn slots(&self) -> usize {
        self.number.len()
    }

    fn name(&self) -> &'static str {
        "bakery"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hammer(mutex: &BakeryMutex, threads: usize, iters: u64) -> u64 {
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for slot in 0..threads {
                let counter = &counter;
                s.spawn(move || {
                    for _ in 0..iters {
                        mutex.lock(slot);
                        let v = counter.load(SeqCst);
                        counter.store(v + 1, SeqCst);
                        mutex.unlock(slot);
                    }
                });
            }
        });
        counter.load(SeqCst)
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let m = BakeryMutex::new(4);
        assert_eq!(hammer(&m, 4, 2_000), 8_000);
    }

    #[test]
    fn counter_is_exact_for_eight_threads() {
        let m = BakeryMutex::new(8);
        assert_eq!(hammer(&m, 8, 1_000), 8_000);
    }

    #[test]
    fn single_thread_works() {
        let m = BakeryMutex::new(1);
        assert_eq!(hammer(&m, 1, 10_000), 10_000);
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn rejects_bad_slot() {
        BakeryMutex::new(2).lock(5);
    }
}
