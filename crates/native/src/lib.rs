//! Real-hardware implementations of the paper's algorithms on
//! `std::sync::atomic`.
//!
//! The simulation crates measure the paper's abstract complexity; this
//! crate measures *time*. It provides:
//!
//! * [`FastMutex`] — Lamport's fast mutual exclusion [Lam87]: a
//!   constant-length uncontended fast path (5 accesses in, 2 out).
//! * [`PetersonTree`] — the bit-only binary tournament ([PF77]/[Kes82]):
//!   `Θ(log n)` uncontended accesses, the price Theorem 1 proves
//!   unavoidable at atomicity 1.
//! * [`TasLock`] — test-and-set / TTAS spinlocks, with optional
//!   exponential [`Backoff`] (the Discussion-section technique).
//! * [`NamingRegistry`] — wait-free naming via `test-and-set` scan and
//!   binary search (Theorem 4.3/4.4).
//!
//! All atomics use `SeqCst`: the algorithms' correctness arguments (like
//! Dekker's) require a single total order over the `x`/`y`/flag writes,
//! which acquire/release does not provide.
//!
//! The `cfc-bench` crate uses these types to reproduce the paper's
//! wall-clock claims (contention-free fast paths; backoff keeping entry
//! time near the contention-free time at all contention levels).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backoff;
mod bakery;
mod fast_mutex;
mod lock;
mod naming;
mod peterson_tree;
mod tas_lock;

pub use backoff::Backoff;
pub use bakery::BakeryMutex;
pub use fast_mutex::FastMutex;
pub use lock::{Guard, SlottedMutex};
pub use naming::NamingRegistry;
pub use peterson_tree::PetersonTree;
pub use tas_lock::{SpinStrategy, TasLock};
