//! The slotted-mutex abstraction and RAII guard.

/// A mutual-exclusion lock for a fixed set of participant *slots*.
///
/// The paper's algorithms assume each process has a unique identity in
/// `1..=n`; natively, each thread owns a distinct slot in `0..slots()`.
/// Identity-free locks (e.g. test-and-set) simply ignore the slot.
///
/// Locking and unlocking are ordinary safe calls; misuse (unlocking a
/// slot that does not hold the lock, two threads sharing a slot) is a
/// logic error that may lose mutual exclusion, but never memory safety —
/// the crate is `#![forbid(unsafe_code)]`.
pub trait SlottedMutex: Send + Sync {
    /// Acquires the lock for `slot`, spinning until available.
    fn lock(&self, slot: usize);

    /// Releases the lock held by `slot`.
    fn unlock(&self, slot: usize);

    /// The number of participant slots.
    fn slots(&self) -> usize;

    /// A short algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Runs `f` under the lock (RAII-style convenience).
    fn with<R>(&self, slot: usize, f: impl FnOnce() -> R) -> R
    where
        Self: Sized,
    {
        let _guard = Guard::new(self, slot);
        f()
    }
}

/// RAII guard: releases the slot's lock on drop.
#[derive(Debug)]
pub struct Guard<'a, M: SlottedMutex> {
    mutex: &'a M,
    slot: usize,
}

impl<'a, M: SlottedMutex> Guard<'a, M> {
    /// Acquires `slot`'s lock, releasing it when the guard drops.
    pub fn new(mutex: &'a M, slot: usize) -> Self {
        mutex.lock(slot);
        Guard { mutex, slot }
    }
}

impl<M: SlottedMutex> Drop for Guard<'_, M> {
    fn drop(&mut self) {
        self.mutex.unlock(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountingLock {
        locks: AtomicUsize,
        unlocks: AtomicUsize,
    }

    impl SlottedMutex for CountingLock {
        fn lock(&self, _slot: usize) {
            self.locks.fetch_add(1, Ordering::SeqCst);
        }
        fn unlock(&self, _slot: usize) {
            self.unlocks.fetch_add(1, Ordering::SeqCst);
        }
        fn slots(&self) -> usize {
            1
        }
        fn name(&self) -> &'static str {
            "counting"
        }
    }

    #[test]
    fn guard_releases_on_drop() {
        let m = CountingLock {
            locks: AtomicUsize::new(0),
            unlocks: AtomicUsize::new(0),
        };
        let out = m.with(0, || 42);
        assert_eq!(out, 42);
        assert_eq!(m.locks.load(Ordering::SeqCst), 1);
        assert_eq!(m.unlocks.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn guard_releases_even_on_panic() {
        let m = CountingLock {
            locks: AtomicUsize::new(0),
            unlocks: AtomicUsize::new(0),
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.with(0, || panic!("boom"))
        }));
        assert!(result.is_err());
        assert_eq!(m.unlocks.load(Ordering::SeqCst), 1);
    }
}
