//! The Peterson–Fischer/Kessels binary tournament on real atomics.
//!
//! Theorem 3's construction at atomicity 1: a binary tree of Peterson
//! two-thread locks over `AtomicBool`s. Entry climbs leaf to root
//! (`Θ(log n)` accesses even without contention — the price of 1-bit
//! registers, per Theorem 1's lower bound); exit releases root to leaf
//! (top-down; the paper's literal leaf-to-root order is unsafe for
//! composed Peterson nodes — see `SlottedMutex::unlock`). All atomics are
//! `SeqCst` (Peterson's algorithm is incorrect under weaker orderings).

use std::sync::atomic::{AtomicBool, Ordering::SeqCst};

use crate::lock::SlottedMutex;

/// One Peterson node: two flags and a turn bit.
#[derive(Debug)]
struct Node {
    flags: [AtomicBool; 2],
    turn: AtomicBool,
}

impl Node {
    fn new() -> Self {
        Node {
            flags: [AtomicBool::new(false), AtomicBool::new(false)],
            turn: AtomicBool::new(false),
        }
    }

    fn lock(&self, side: usize) {
        let other = 1 - side;
        self.flags[side].store(true, SeqCst);
        self.turn.store(other != 0, SeqCst);
        let mut spins = 0u32;
        while self.flags[other].load(SeqCst) && self.turn.load(SeqCst) == (other != 0) {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    fn unlock(&self, side: usize) {
        self.flags[side].store(false, SeqCst);
    }
}

/// A binary tournament of Peterson locks for `slots` threads.
#[derive(Debug)]
pub struct PetersonTree {
    slots: usize,
    /// Tree depth (levels a thread traverses).
    depth: u32,
    /// Heap-ordered internal nodes; index 1 is the root (index 0 unused).
    nodes: Box<[Node]>,
}

impl PetersonTree {
    /// Creates the tournament for `slots ≥ 1` threads.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(slots: usize) -> Self {
        assert!(slots >= 1, "need at least one slot");
        let width = slots.next_power_of_two().max(2);
        let depth = width.trailing_zeros();
        // Heap with `width - 1` internal nodes at indices 1..width.
        let nodes: Box<[Node]> = (0..width).map(|_| Node::new()).collect();
        PetersonTree {
            slots,
            depth,
            nodes,
        }
    }

    /// The number of tree levels a thread traverses: `⌈log₂ slots⌉`.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The heap index and side for `slot` at `level` (0 = leaf level).
    fn node_at(&self, slot: usize, level: u32) -> (usize, usize) {
        let pos = slot >> level;
        (pos >> 1, pos & 1)
    }
}

impl SlottedMutex for PetersonTree {
    fn lock(&self, slot: usize) {
        assert!(slot < self.slots, "slot out of range");
        // Climb: leaf level 0 up to the root.
        for level in 0..self.depth {
            let (heap, side) = self.node_at(slot, level);
            // heap index within level-(depth-level-1) of the tree: the
            // heap numbering follows: node at position `pos` of level k
            // has heap id 2^k + pos; here pos>>1 with offset works out to
            // the standard `width/2^level` layout:
            let base = (self.nodes.len() >> (level + 1)).max(1);
            self.nodes[base + heap].lock(side);
        }
    }

    fn unlock(&self, slot: usize) {
        // Release root to leaf. The paper's prose says leaf to root, but
        // that order is unsafe for composed Peterson nodes: once the leaf
        // is freed, a successor can acquire a still-held upper node and
        // the departing thread's later release wipes the successor's
        // flag, admitting a third thread (cfc-verify's explorer exhibits
        // the interleaving). Top-down release is safe because everyone
        // who could share a node is still blocked below it.
        for level in (0..self.depth).rev() {
            let (heap, side) = self.node_at(slot, level);
            let base = (self.nodes.len() >> (level + 1)).max(1);
            self.nodes[base + heap].unlock(side);
        }
    }

    fn slots(&self) -> usize {
        self.slots
    }

    fn name(&self) -> &'static str {
        "peterson-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn hammer(mutex: &PetersonTree, threads: usize, iters: u64) -> u64 {
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for slot in 0..threads {
                let counter = &counter;
                s.spawn(move || {
                    for _ in 0..iters {
                        mutex.lock(slot);
                        let v = counter.load(SeqCst);
                        counter.store(v + 1, SeqCst);
                        mutex.unlock(slot);
                    }
                });
            }
        });
        counter.load(SeqCst)
    }

    #[test]
    fn counter_is_exact_for_two() {
        let m = PetersonTree::new(2);
        assert_eq!(m.depth(), 1);
        assert_eq!(hammer(&m, 2, 5_000), 10_000);
    }

    #[test]
    fn counter_is_exact_for_four() {
        let m = PetersonTree::new(4);
        assert_eq!(m.depth(), 2);
        assert_eq!(hammer(&m, 4, 2_000), 8_000);
    }

    #[test]
    fn counter_is_exact_for_non_power_of_two() {
        let m = PetersonTree::new(5);
        assert_eq!(m.depth(), 3);
        assert_eq!(hammer(&m, 5, 1_000), 5_000);
    }

    #[test]
    fn single_slot_still_works() {
        let m = PetersonTree::new(1);
        assert_eq!(hammer(&m, 1, 5_000), 5_000);
    }

    #[test]
    fn node_addressing_is_disjoint_per_level() {
        // Two siblings share their parent node with opposite sides.
        let m = PetersonTree::new(4);
        let (n0, s0) = m.node_at(0, 0);
        let (n1, s1) = m.node_at(1, 0);
        assert_eq!(n0, n1);
        assert_ne!(s0, s1);
        // Cousins use different leaf nodes.
        let (n2, _) = m.node_at(2, 0);
        assert_ne!(n0, n2);
        // At the root level all slots map to node 0 with side = top bit.
        let (r0, rs0) = m.node_at(0, 1);
        let (r3, rs3) = m.node_at(3, 1);
        assert_eq!(r0, r3);
        assert_ne!(rs0, rs3);
    }
}
