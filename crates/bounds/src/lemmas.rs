//! The combinatorial inequalities of Lemma 3 and Lemma 6.
//!
//! These are the engines behind Theorems 1 and 2: any algorithm solving
//! contention detection among `n` processes must have contention-free
//! complexities satisfying them. The experiment suite plugs *measured*
//! complexities of every implemented algorithm into these inequalities —
//! a direct, executable check of the paper's core claims.

/// log₂(w!) computed stably in log space.
pub fn log2_factorial(w: u64) -> f64 {
    (2..=w).map(|k| (k as f64).log2()).sum()
}

/// Lemma 3: for any contention-detection algorithm among `n` processes
/// with atomicity `l`, contention-free **write-step** complexity `w`, and
/// contention-free **read-register** complexity `r`:
///
/// `w·l + w·log₂(w²·r + w·r²) ≥ log₂ n`.
///
/// Returns the left-hand side value.
pub fn lemma3_lhs(l: u32, w: u64, r: u64) -> f64 {
    let (wf, rf) = (w as f64, r as f64);
    let inner = wf * wf * rf + wf * rf * rf;
    if inner <= 0.0 {
        return 0.0;
    }
    wf * l as f64 + wf * inner.log2()
}

/// Does the measured profile satisfy Lemma 3's inequality?
///
/// `true` is expected for every *correct* algorithm; a violation would
/// contradict the paper (or reveal an unsafe algorithm).
pub fn lemma3_holds(n: u64, l: u32, w: u64, r: u64) -> bool {
    lemma3_lhs(l, w, r) >= (n as f64).log2()
}

/// Lemma 6 right-hand side in log space: for any contention-detection
/// algorithm among `n` processes with atomicity `l`, contention-free
/// **write-register** complexity `w`, and contention-free **register**
/// complexity `c`:
///
/// `n < 2·w! · (4c·w!)^c · (w·2^{l·w})^w`.
///
/// Returns `log₂` of the right-hand side.
pub fn lemma6_rhs_log2(l: u32, w: u64, c: u64) -> f64 {
    let lf = log2_factorial(w);
    let log_4c = if c == 0 { 0.0 } else { (4.0 * c as f64).log2() };
    let log_w = if w == 0 { 0.0 } else { (w as f64).log2() };
    1.0 + lf + c as f64 * (log_4c + lf) + w as f64 * (log_w + l as f64 * w as f64)
}

/// Does the measured profile satisfy Lemma 6's inequality?
pub fn lemma6_holds(n: u64, l: u32, w: u64, c: u64) -> bool {
    (n as f64).log2() < lemma6_rhs_log2(l, w, c)
}

/// The largest `n` for which a given contention-free profile `(w, r)` can
/// possibly solve contention detection, per Lemma 3: `2^(lemma3_lhs)`.
///
/// Saturates at `u64::MAX` for large profiles.
pub fn lemma3_max_processes(l: u32, w: u64, r: u64) -> u64 {
    let lhs = lemma3_lhs(l, w, r);
    if lhs >= 63.0 {
        u64::MAX
    } else {
        lhs.exp2().floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_factorial_small_values() {
        assert_eq!(log2_factorial(0), 0.0);
        assert_eq!(log2_factorial(1), 0.0);
        assert!((log2_factorial(2) - 1.0).abs() < 1e-12);
        // log2(6) = log2(3!) ~ 2.585
        assert!((log2_factorial(3) - 6f64.log2()).abs() < 1e-12);
        // Stirling sanity for a larger value: log2(20!) ~ 61.077
        assert!((log2_factorial(20) - 61.0774).abs() < 1e-3);
    }

    #[test]
    fn lemma3_monotone_in_profile() {
        // More writes or more registers read can only help.
        assert!(lemma3_lhs(4, 2, 2) < lemma3_lhs(4, 3, 2));
        assert!(lemma3_lhs(4, 2, 2) < lemma3_lhs(4, 2, 3));
        assert!(lemma3_lhs(1, 2, 2) < lemma3_lhs(8, 2, 2));
    }

    #[test]
    fn lemma3_sanity_for_lamport_profile() {
        // Lamport's fast mutex contention-free profile: 3 writes
        // (b, x, y), reads of 2 registers (y, x), registers of log n bits.
        // The mutex -> detector reduction adds one read and one write of
        // the `claimed` bit: w = 4 write-steps, r = 3 read-registers.
        // Lemma 3 must admit n processes with l = log2(n).
        for exp in [4u32, 8, 16, 20] {
            let n = 1u64 << exp;
            assert!(
                lemma3_holds(n, exp, 4, 3),
                "Lamport profile must satisfy Lemma 3 at n = 2^{exp}"
            );
        }
    }

    #[test]
    fn lemma3_rules_out_constant_bit_profiles() {
        // A detector over bits (l = 1) with constant profile w = r = 2
        // cannot serve arbitrarily many processes: lhs = 2 + 2*log2(12).
        let max_n = lemma3_max_processes(1, 2, 2);
        assert!(max_n <= 1 << 10, "constant-bit profile caps n, got {max_n}");
        assert!(!lemma3_holds(1 << 20, 1, 2, 2));
    }

    #[test]
    fn lemma6_sanity() {
        // A profile with c = 3 registers, w = 2 written, l = 16 admits
        // large n (Lamport-like), while tiny bit profiles do not admit
        // astronomically many processes.
        assert!(lemma6_holds(1 << 20, 16, 2, 3));
        let rhs = lemma6_rhs_log2(1, 1, 1);
        // w = c = 1, l = 1: rhs_log = 1 + 0 + 1*(2 + 0) + 1*(0 + 1) = 4.
        assert!((rhs - 4.0).abs() < 1e-9, "{rhs}");
        assert!(!lemma6_holds(1 << 10, 1, 1, 1));
    }

    #[test]
    fn lemma6_monotone_in_profile() {
        assert!(lemma6_rhs_log2(4, 2, 3) < lemma6_rhs_log2(4, 2, 4));
        assert!(lemma6_rhs_log2(4, 2, 3) < lemma6_rhs_log2(4, 3, 3));
    }

    #[test]
    fn lemma3_max_processes_saturates() {
        assert_eq!(lemma3_max_processes(60, 10, 10), u64::MAX);
    }
}
