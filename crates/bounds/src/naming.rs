//! Tight bounds for the naming problem (Section 3.3, Theorems 4–7).
//!
//! The paper's closing table gives tight bounds for five representative
//! models, across all four complexity measures:
//!
//! | measure | TAS | read+TAS | read+TAS+TAR | TAF | rmw (all) |
//! |---|---|---|---|---|---|
//! | c-f register | n−1 | log n | log n | log n | log n |
//! | c-f step | n−1 | log n | log n | log n | log n |
//! | w-c register | n−1 | n−1 | log n | log n | log n |
//! | w-c step | n−1 | n−1 | n−1 | log n | log n |

use std::fmt;

use crate::ceil_log2;

/// One of the four time-complexity measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Measure {
    /// Contention-free register complexity.
    CfRegister,
    /// Contention-free step complexity.
    CfStep,
    /// Worst-case register complexity.
    WcRegister,
    /// Worst-case step complexity.
    WcStep,
}

impl Measure {
    /// All four measures, in the table's row order.
    pub const ALL: [Measure; 4] = [
        Measure::CfRegister,
        Measure::CfStep,
        Measure::WcRegister,
        Measure::WcStep,
    ];

    /// The abbreviation used in the paper's table.
    pub const fn label(self) -> &'static str {
        match self {
            Measure::CfRegister => "c-f register",
            Measure::CfStep => "c-f step",
            Measure::WcRegister => "w-c register",
            Measure::WcStep => "w-c step",
        }
    }
}

impl fmt::Display for Measure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The five model columns of the paper's naming table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelClass {
    /// `{test-and-set}` only.
    TasOnly,
    /// `{read, test-and-set}`.
    ReadTas,
    /// `{read, test-and-set, test-and-reset}`.
    ReadTasTar,
    /// `{test-and-flip}` (and any model containing it).
    Taf,
    /// The full read–modify–write model (all eight operations).
    Rmw,
}

impl ModelClass {
    /// All five columns in the table's order.
    pub const ALL: [ModelClass; 5] = [
        ModelClass::TasOnly,
        ModelClass::ReadTas,
        ModelClass::ReadTasTar,
        ModelClass::Taf,
        ModelClass::Rmw,
    ];

    /// The column heading used in the paper's table.
    pub const fn label(self) -> &'static str {
        match self {
            ModelClass::TasOnly => "test-and-set",
            ModelClass::ReadTas => "read+test-and-set",
            ModelClass::ReadTasTar => "read+tas+test-and-reset",
            ModelClass::Taf => "test-and-flip",
            ModelClass::Rmw => "rmw (all)",
        }
    }
}

impl fmt::Display for ModelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A tight bound value: either `n − 1` or `⌈log₂ n⌉`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bound {
    /// Linear in the number of processes: `n − 1`.
    Linear,
    /// Logarithmic: `⌈log₂ n⌉`.
    Log,
}

impl Bound {
    /// Evaluates the bound for `n` processes.
    pub fn eval(self, n: u64) -> u64 {
        match self {
            Bound::Linear => n - 1,
            Bound::Log => u64::from(ceil_log2(n)),
        }
    }

    /// The symbolic form used in the paper's table.
    pub const fn symbol(self) -> &'static str {
        match self {
            Bound::Linear => "n-1",
            Bound::Log => "log n",
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// The tight bound for a model class and measure — the paper's table as a
/// function.
pub fn tight_bound(class: ModelClass, measure: Measure) -> Bound {
    use Measure::*;
    use ModelClass::*;
    match (class, measure) {
        (TasOnly, _) => Bound::Linear,
        (ReadTas, CfRegister | CfStep) => Bound::Log,
        (ReadTas, WcRegister | WcStep) => Bound::Linear,
        (ReadTasTar, WcStep) => Bound::Linear,
        (ReadTasTar, _) => Bound::Log,
        (Taf | Rmw, _) => Bound::Log,
    }
}

/// Theorem 5: in **every** model, the contention-free register complexity
/// of naming is at least `log₂ n`.
pub fn thm5_cf_register_lower(n: u64) -> u64 {
    u64::from(ceil_log2(n))
}

/// Theorem 6: in every model **without** `test-and-flip`, the worst-case
/// step complexity of naming is at least `n − 1`.
pub fn thm6_wc_step_lower(n: u64) -> u64 {
    n - 1
}

/// Theorem 7: in the model `{test-and-set}`, even the contention-free
/// register complexity of naming is at least `n − 1`.
pub fn thm7_tas_cf_register_lower(n: u64) -> u64 {
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper() {
        use Bound::*;
        use Measure::*;
        use ModelClass::*;
        let expected: [(ModelClass, [Bound; 4]); 5] = [
            (TasOnly, [Linear, Linear, Linear, Linear]),
            (ReadTas, [Log, Log, Linear, Linear]),
            (ReadTasTar, [Log, Log, Log, Linear]),
            (Taf, [Log, Log, Log, Log]),
            (Rmw, [Log, Log, Log, Log]),
        ];
        for (class, bounds) in expected {
            for (measure, bound) in Measure::ALL.into_iter().zip(bounds) {
                assert_eq!(
                    tight_bound(class, measure),
                    bound,
                    "{class} / {measure}"
                );
            }
        }
        let _ = (CfRegister, CfStep, WcRegister, WcStep); // row order used above
    }

    #[test]
    fn bounds_evaluate() {
        assert_eq!(Bound::Linear.eval(16), 15);
        assert_eq!(Bound::Log.eval(16), 4);
        assert_eq!(Bound::Log.eval(100), 7);
    }

    #[test]
    fn monotonicity_within_columns() {
        // Going down the table (cf -> wc) bounds never decrease.
        for class in ModelClass::ALL {
            for n in [4u64, 16, 64] {
                let cf_reg = tight_bound(class, Measure::CfRegister).eval(n);
                let cf_step = tight_bound(class, Measure::CfStep).eval(n);
                let wc_reg = tight_bound(class, Measure::WcRegister).eval(n);
                let wc_step = tight_bound(class, Measure::WcStep).eval(n);
                assert!(cf_reg <= cf_step || cf_reg == cf_step);
                assert!(cf_reg <= wc_reg);
                assert!(cf_step <= wc_step);
                assert!(wc_reg <= wc_step);
            }
        }
    }

    #[test]
    fn theorem_functions() {
        assert_eq!(thm5_cf_register_lower(32), 5);
        assert_eq!(thm6_wc_step_lower(32), 31);
        assert_eq!(thm7_tas_cf_register_lower(32), 31);
    }

    #[test]
    fn labels_are_paper_strings() {
        assert_eq!(Measure::CfRegister.to_string(), "c-f register");
        assert_eq!(ModelClass::Taf.to_string(), "test-and-flip");
        assert_eq!(Bound::Linear.to_string(), "n-1");
    }
}
