//! Closed-form complexity bounds from Alur & Taubenfeld (PODC 1994).
//!
//! This crate evaluates, as plain functions, every quantitative bound the
//! paper proves:
//!
//! * [`mutex`] — Theorems 1–3: lower and upper bounds on the
//!   contention-free step and register complexity of mutual exclusion (and
//!   contention detection) as a function of the number of processes `n`
//!   and the atomicity `l`.
//! * [`lemmas`] — the combinatorial inequalities of Lemma 3 and Lemma 6,
//!   which any correct contention-detection algorithm must satisfy;
//!   experiments plug *measured* complexities into them.
//! * [`naming`] — the tight bounds of the naming table (Section 3.3,
//!   Theorems 4–7).
//! * [`table`] — plain-text table rendering used by the benches to
//!   regenerate the paper's tables.
//!
//! # Example
//!
//! ```
//! use cfc_bounds::mutex;
//!
//! // For n = 2^60 processes and 1-bit registers, a process must access
//! // shared bits several times even without contention:
//! let lower = mutex::thm1_step_lower_int(1 << 60, 1);
//! assert!(lower >= 4);
//! // ...and 7 * ceil(log n / l) accesses always suffice:
//! assert_eq!(mutex::thm3_step_upper(1 << 20, 1), 140);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lemmas;
pub mod mutex;
pub mod naming;
pub mod table;

/// ⌈log₂ n⌉ for n ≥ 1 (0 for n = 1).
pub fn ceil_log2(n: u64) -> u32 {
    assert!(n >= 1, "ceil_log2 requires n >= 1");
    64 - (n - 1).leading_zeros()
}

/// log₂ n as a float, for bound formulas.
pub fn log2(n: u64) -> f64 {
    (n as f64).log2()
}

/// ⌈a / b⌉ for integers.
pub fn ceil_div(a: u64, b: u64) -> u64 {
    assert!(b > 0, "division by zero");
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn ceil_div_values() {
        assert_eq!(ceil_div(10, 3), 4);
        assert_eq!(ceil_div(9, 3), 3);
        assert_eq!(ceil_div(1, 5), 1);
        assert_eq!(ceil_div(0, 5), 0);
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn ceil_log2_rejects_zero() {
        ceil_log2(0);
    }
}
