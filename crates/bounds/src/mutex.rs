//! Bounds for mutual exclusion and contention detection (Theorems 1–3).
//!
//! The paper's summary table (Section 2.6), for `n` processes and
//! atomicity `l`:
//!
//! | Measure | Lower bound | Upper bound |
//! |---|---|---|
//! | contention-free register | √(log n / (l + log log n)) (Thm 2) | 3⌈log n / l⌉ (Thm 3) |
//! | contention-free step | log n / (l − 2 + 3 log log n) (Thm 1) | 7⌈log n / l⌉ (Thm 3) |
//! | worst-case register | √(log n / (l + log log n)) (Thm 2) | O(log n) [Kes82] |
//! | worst-case step | ∞ [AT92] | — |

use crate::{ceil_div, ceil_log2, log2};

/// Theorem 1 right-hand side: `log n / (l − 2 + 3 log log n)`.
///
/// Every (weak) deadlock-free mutual exclusion (or contention detection)
/// algorithm has contention-free step complexity *strictly greater* than
/// this value. Returns `f64::INFINITY` when the denominator is zero or
/// negative (tiny `n` with small `l`, where the formula is vacuous but the
/// trivial bound [`MIN_DETECTION_STEPS`] still applies).
///
/// # Panics
///
/// Panics if `n < 2` or `l == 0`.
pub fn thm1_step_lower(n: u64, l: u32) -> f64 {
    assert!(n >= 2, "bounds need at least two processes");
    assert!(l >= 1, "atomicity must be positive");
    let log_n = log2(n);
    let denom = l as f64 - 2.0 + 3.0 * log_n.log2();
    if denom <= 0.0 {
        // The inequality `c > log n / denom` holds vacuously (denominator
        // non-positive means the derivation's inequality (7) is satisfied
        // by every c); report no constraint beyond the trivial one.
        return 0.0;
    }
    log_n / denom
}

/// The smallest integer satisfying Theorem 1's strict inequality, further
/// clamped to the trivial bound [`MIN_DETECTION_STEPS`].
pub fn thm1_step_lower_int(n: u64, l: u32) -> u64 {
    let b = thm1_step_lower(n, l);
    let strict = if b <= 0.0 { 0 } else { b.floor() as u64 + 1 };
    strict.max(MIN_DETECTION_STEPS)
}

/// Before terminating, a contention detector must write at least once and
/// read at least once (`r ≥ 1` and `w ≥ 1` in the proof of Lemma 4), so
/// every algorithm takes at least 2 contention-free steps.
pub const MIN_DETECTION_STEPS: u64 = 2;

/// Theorem 2 right-hand side: `√(log n / (l + log log n))`.
///
/// Every contention detection / mutual exclusion algorithm has
/// contention-free *register* complexity at least this value.
///
/// # Panics
///
/// Panics if `n < 2` or `l == 0`.
pub fn thm2_register_lower(n: u64, l: u32) -> f64 {
    assert!(n >= 2, "bounds need at least two processes");
    assert!(l >= 1, "atomicity must be positive");
    let log_n = log2(n);
    let denom = l as f64 + log_n.log2();
    if denom <= 0.0 {
        return 0.0;
    }
    (log_n / denom).sqrt()
}

/// The smallest integer register complexity consistent with Theorem 2's
/// derivation `(c + 1)² > log n / (l + log log n)`, clamped to the trivial
/// bound of 2 distinct registers (a detector must read one register and
/// write one; if they coincided, solo runs of two processes would be
/// indistinguishable — Lemma 2 forces both a read set and a write set).
pub fn thm2_register_lower_int(n: u64, l: u32) -> u64 {
    let log_n = log2(n);
    let denom = l as f64 + log_n.log2();
    let c = if denom <= 0.0 {
        0
    } else {
        let b = log_n / denom; // need (c+1)^2 > b
        let mut c = (b.sqrt() - 1.0).max(0.0).floor() as u64;
        while ((c + 1) * (c + 1)) as f64 <= b {
            c += 1;
        }
        c
    };
    c.max(MIN_DETECTION_REGISTERS)
}

/// A contention detector accesses at least 2 distinct registers in a
/// contention-free run (it must both read and write; see
/// [`thm2_register_lower_int`]).
pub const MIN_DETECTION_REGISTERS: u64 = 2;

/// Theorem 3 upper bound on contention-free step complexity:
/// `7 ⌈log₂ n / l⌉`.
///
/// Achieved by a tournament tree of Lamport fast-mutex nodes; Lamport's
/// algorithm takes 5 contention-free accesses to enter and 2 to exit at
/// each of the `⌈log n / l⌉` levels.
pub fn thm3_step_upper(n: u64, l: u32) -> u64 {
    7 * ceil_div(u64::from(ceil_log2(n)), u64::from(l)).max(1)
}

/// Theorem 3 upper bound on contention-free register complexity:
/// `3 ⌈log₂ n / l⌉` (3 distinct registers per tree level).
pub fn thm3_register_upper(n: u64, l: u32) -> u64 {
    3 * ceil_div(u64::from(ceil_log2(n)), u64::from(l)).max(1)
}

/// The arity of the tournament tree our implementation builds for
/// atomicity `l`.
///
/// Lamport's algorithm for `k` competitors needs registers holding `k`
/// identities plus a distinguished "free" value, so `l`-bit registers host
/// `2^l − 1` competitors per node. For `l = 1` the construction degenerates
/// and we use binary Peterson (three shared bits) nodes instead — the
/// Peterson–Fischer tournament [PF77]/[Kes82].
pub fn tournament_arity(l: u32) -> u64 {
    assert!(l >= 1, "atomicity must be positive");
    if l == 1 {
        2
    } else {
        (1u64 << l.min(32)) - 1
    }
}

/// The depth of our tournament tree: `⌈log_arity n⌉`, at least 1.
pub fn tournament_depth(n: u64, l: u32) -> u64 {
    assert!(n >= 2, "a tournament needs at least two processes");
    let a = tournament_arity(l);
    let mut depth = 0u64;
    let mut capacity = 1u64;
    while capacity < n {
        capacity = capacity.saturating_mul(a);
        depth += 1;
    }
    depth.max(1)
}

/// Contention-free step complexity of our tournament implementation:
/// 7 accesses per level for Lamport nodes (`l ≥ 2`), 4 per level for
/// Peterson nodes (`l = 1`: 3 entry accesses + 1 exit access on the
/// contention-free path).
pub fn tournament_step_upper(n: u64, l: u32) -> u64 {
    let per_level = if l == 1 { 4 } else { 7 };
    per_level * tournament_depth(n, l)
}

/// Contention-free register complexity of our tournament implementation:
/// 3 distinct registers per level for both node kinds.
pub fn tournament_register_upper(n: u64, l: u32) -> u64 {
    3 * tournament_depth(n, l)
}

/// Worst-case register complexity upper bound for bit-register mutual
/// exclusion, O(log n) via a binary tournament of 3-bit Peterson nodes
/// ([Kes82]; our implementation uses 3 distinct bits per level).
pub fn kessels_wc_register_upper(n: u64) -> u64 {
    3 * u64::from(ceil_log2(n)).max(1)
}

/// The corollary after Theorem 1: with atomicity `l` and contention-free
/// step complexity `c`, some process accesses shared *bits* at least
/// `l + c − 1` times in the absence of contention.
pub fn bit_access_lower(l: u32, c: u64) -> u64 {
    u64::from(l) + c - 1
}

/// Lamport's fast mutex [Lam87]: contention-free step complexity (5 entry
/// + 2 exit accesses).
pub const LAMPORT_FAST_STEPS: u64 = 7;
/// Lamport's fast mutex [Lam87]: contention-free register complexity
/// (x, y, and the process's own b-flag).
pub const LAMPORT_FAST_REGISTERS: u64 = 3;

/// Peterson's two-process algorithm: bounded bypass 1 — after a waiter's
/// first entry step, the `turn` handshake admits the owner at most once
/// more. Verified mechanically by `cfc-verify`'s fair-cycle checker
/// (`check_mutex_starvation`), whose measurement ships a
/// `validate_bypass`-checked witness schedule actually overtaking an
/// engaged waiter once; cross-checked in `tests/bounds_consistency.rs`.
pub const PETERSON_BYPASS: u64 = 1;

/// The bakery's bypass bound, `2(n − 1)`: first-come-first-served only
/// protects waiters whose *doorway* has completed, while bypass counting
/// starts at the waiter's first entry step — so each of the `n − 1`
/// competitors can overtake twice, once from a gate check already in
/// flight and once more via a doorway that overlapped the waiter's
/// ticket scan (drawing a smaller ticket). Matches the fair-cycle
/// checker's measurement at `n = 2` (bypass 2) and `n = 3` (bypass 4),
/// each backed by a `validate_bypass`-checked witness schedule.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn bakery_bypass_upper(n: u64) -> u64 {
    assert!(n >= 1, "need at least one process");
    2 * (n - 1)
}

/// Whether our Theorem 3 tournament is starvation-free at atomicity `l`.
///
/// `l = 1` builds Peterson nodes, whose bounded bypass composes into
/// tree-wide starvation freedom (though with **no** overall bypass bound
/// beyond a single node: the tree has no wait-free doorway, so a waiter
/// frozen mid-climb watches the far subtree pass unboundedly). `l ≥ 2`
/// builds Lamport fast-mutex nodes, which are starvable [AT92] — and a
/// tournament of starvable nodes is starvable; the fair-cycle checker
/// exhibits the lasso at `n = 3, l = 2`.
pub fn tournament_starvation_free(l: u32) -> bool {
    assert!(l >= 1, "atomicity must be positive");
    l == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thm1_is_decreasing_in_atomicity() {
        let n = 1 << 20;
        let b1 = thm1_step_lower(n, 1);
        let b8 = thm1_step_lower(n, 8);
        let b16 = thm1_step_lower(n, 16);
        assert!(b1 > b8 && b8 > b16, "{b1} {b8} {b16}");
    }

    #[test]
    fn thm1_is_increasing_in_n() {
        assert!(thm1_step_lower(1 << 30, 4) > thm1_step_lower(1 << 10, 4));
    }

    #[test]
    fn thm1_int_is_strictly_greater() {
        for &n in &[4u64, 16, 256, 1 << 20, 1 << 40] {
            for l in [1u32, 2, 4, 8, 16] {
                let b = thm1_step_lower(n, l);
                let i = thm1_step_lower_int(n, l);
                assert!((i as f64) > b || i == MIN_DETECTION_STEPS);
                assert!(i >= MIN_DETECTION_STEPS);
            }
        }
    }

    #[test]
    fn thm1_vacuous_denominator_handled() {
        // n = 2: log n = 1, log log n = 0, denominator = l - 2.
        assert_eq!(thm1_step_lower(2, 1), 0.0);
        assert_eq!(thm1_step_lower(2, 2), 0.0);
        assert!(thm1_step_lower(2, 3) > 0.0);
    }

    #[test]
    fn thm2_values_are_modest() {
        // The register lower bound grows like sqrt(log n / l).
        let b = thm2_register_lower(1 << 16, 1);
        assert!(b > 1.5 && b < 4.0, "{b}");
        assert!(thm2_register_lower_int(1 << 16, 1) >= 2);
    }

    #[test]
    fn thm2_int_satisfies_derivation() {
        for &n in &[4u64, 256, 1 << 20, 1 << 50] {
            for l in [1u32, 2, 8] {
                let c = thm2_register_lower_int(n, l);
                let b = log2(n) / (l as f64 + log2(n).log2());
                assert!(
                    ((c + 1) * (c + 1)) as f64 > b,
                    "n={n} l={l} c={c} b={b}"
                );
            }
        }
    }

    #[test]
    fn thm3_matches_paper_examples() {
        // log n = 20, l = 1 -> 7 * 20 and 3 * 20.
        assert_eq!(thm3_step_upper(1 << 20, 1), 140);
        assert_eq!(thm3_register_upper(1 << 20, 1), 60);
        // l = log n -> one level.
        assert_eq!(thm3_step_upper(1 << 20, 20), 7);
        assert_eq!(thm3_register_upper(1 << 20, 20), 3);
    }

    #[test]
    fn lower_bounds_below_upper_bounds() {
        for &n in &[4u64, 64, 1024, 1 << 20] {
            for l in [1u32, 2, 4, 8] {
                assert!(
                    thm1_step_lower(n, l) < thm3_step_upper(n, l) as f64,
                    "step: n={n} l={l}"
                );
                assert!(
                    thm2_register_lower(n, l) <= thm3_register_upper(n, l) as f64,
                    "register: n={n} l={l}"
                );
            }
        }
    }

    #[test]
    fn tournament_geometry() {
        assert_eq!(tournament_arity(1), 2);
        assert_eq!(tournament_arity(2), 3);
        assert_eq!(tournament_arity(4), 15);
        assert_eq!(tournament_depth(8, 1), 3);
        assert_eq!(tournament_depth(9, 2), 2); // 3-ary: 3^2 = 9
        assert_eq!(tournament_depth(10, 2), 3);
        assert_eq!(tournament_depth(2, 8), 1);
    }

    #[test]
    fn tournament_upper_tracks_depth() {
        assert_eq!(tournament_step_upper(8, 1), 12); // 4 per Peterson level
        assert_eq!(tournament_register_upper(8, 1), 9);
        assert_eq!(tournament_step_upper(9, 2), 14); // 7 per Lamport level
        assert_eq!(tournament_register_upper(9, 2), 6);
    }

    #[test]
    fn implementation_bounds_within_constant_of_paper_formula() {
        // Our arity-(2^l - 1) substitution inflates depth by at most a
        // factor ~ l / log2(2^l - 1) < 2 for l >= 2.
        for &n in &[16u64, 256, 1 << 16] {
            for l in [2u32, 4, 8] {
                let ours = tournament_step_upper(n, l);
                let paper = thm3_step_upper(n, l);
                assert!(ours <= 2 * paper, "n={n} l={l}: {ours} vs {paper}");
            }
        }
    }

    #[test]
    fn bit_access_corollary() {
        assert_eq!(bit_access_lower(16, 7), 22);
        assert_eq!(bit_access_lower(1, 2), 2);
    }

    #[test]
    fn kessels_bound_is_logarithmic() {
        assert_eq!(kessels_wc_register_upper(1 << 10), 30);
    }

    #[test]
    fn fairness_row_shapes() {
        assert_eq!(PETERSON_BYPASS, 1);
        assert_eq!(bakery_bypass_upper(2), 2);
        assert_eq!(bakery_bypass_upper(3), 4);
        assert_eq!(bakery_bypass_upper(1), 0); // nobody to be bypassed by
        assert!(tournament_starvation_free(1));
        assert!(!tournament_starvation_free(2));
        assert!(!tournament_starvation_free(16));
    }
}
