//! Plain-text table rendering for experiment reports.
//!
//! The benchmark harness regenerates the paper's tables as aligned text
//! (and CSV for downstream tooling); this module is the shared renderer.

use std::fmt;

/// An aligned plain-text table.
///
/// # Examples
///
/// ```
/// use cfc_bounds::table::TextTable;
///
/// let mut t = TextTable::new(["n", "lower", "measured", "upper"]);
/// t.row(["16", "2", "7", "28"]);
/// let rendered = t.to_string();
/// assert!(rendered.contains("measured"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    title: Option<String>,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            title: None,
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row. Rows shorter than the header are padded with blanks;
    /// longer rows are truncated to the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as comma-separated values (header row first).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        if let Some(title) = &self.title {
            writeln!(f, "{title}")?;
        }
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        render_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["a", "bbbb"]).with_title("demo");
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.to_string();
        assert!(s.starts_with("demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        // header, separator, 2 rows
        assert_eq!(lines.len(), 5);
        assert!(lines[1].contains('a') && lines[1].contains("bbbb"));
        // Right-aligned: "333" should align under "a" column of width 3.
        assert!(lines[4].starts_with("333"));
        assert!(lines[3].starts_with("  1"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = TextTable::new(["x", "y"]);
        t.row(["only-x"]);
        t.row(["1", "2", "extra-dropped"]);
        assert_eq!(t.len(), 2);
        let s = t.to_string();
        assert!(!s.contains("extra-dropped"));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(["h1", "h2"]);
        assert!(t.is_empty());
        let s = t.to_string();
        assert_eq!(s.lines().count(), 2);
    }
}
