//! Property-based tests for the bound formulas: monotonicity, ordering,
//! and consistency relations that must hold across the parameter space.

use cfc_bounds::{ceil_div, ceil_log2, lemmas, log2, mutex, naming};
use proptest::prelude::*;

proptest! {
    /// Lower bounds never exceed upper bounds anywhere in the grid.
    #[test]
    fn lower_bounds_stay_below_upper_bounds(n_exp in 2u32..40, l in 1u32..17) {
        let n = 1u64 << n_exp;
        prop_assert!(mutex::thm1_step_lower(n, l) < mutex::thm3_step_upper(n, l) as f64);
        prop_assert!(
            mutex::thm2_register_lower(n, l) <= mutex::thm3_register_upper(n, l) as f64
        );
        // The integer versions respect the same ordering, with slack for
        // the trivial-minimum clamps at tiny parameters.
        prop_assert!(
            mutex::thm1_step_lower_int(n, l) <= mutex::thm3_step_upper(n, l).max(2)
        );
    }

    /// Theorem 1's bound decreases in `l` and increases in `n`.
    #[test]
    fn thm1_monotonicity(n_exp in 3u32..40, l in 1u32..16) {
        let n = 1u64 << n_exp;
        prop_assert!(mutex::thm1_step_lower(n, l) >= mutex::thm1_step_lower(n, l + 1));
        prop_assert!(mutex::thm1_step_lower(2 * n, l) >= mutex::thm1_step_lower(n, l));
    }

    /// Theorem 2's bound decreases in `l` and increases in `n`.
    #[test]
    fn thm2_monotonicity(n_exp in 3u32..40, l in 1u32..16) {
        let n = 1u64 << n_exp;
        prop_assert!(mutex::thm2_register_lower(n, l) >= mutex::thm2_register_lower(n, l + 1));
        prop_assert!(mutex::thm2_register_lower(2 * n, l) >= mutex::thm2_register_lower(n, l));
    }

    /// The register lower bound never exceeds the step lower bound's
    /// integer form (register complexity <= step complexity).
    #[test]
    fn register_bound_below_step_upper(n_exp in 2u32..30, l in 1u32..10) {
        let n = 1u64 << n_exp;
        prop_assert!(
            mutex::thm2_register_lower_int(n, l) <= mutex::thm3_step_upper(n, l).max(2)
        );
    }

    /// Tournament geometry: capacity covers n, and depth shrinks with l.
    #[test]
    fn tournament_depth_consistency(n_exp in 1u32..30, l in 1u32..16) {
        let n = (1u64 << n_exp).max(2);
        let depth = mutex::tournament_depth(n, l);
        let arity = mutex::tournament_arity(l);
        // a^depth >= n and a^(depth-1) < n (when depth > 1).
        prop_assert!(arity.saturating_pow(depth as u32) >= n);
        if depth > 1 {
            prop_assert!(arity.saturating_pow(depth as u32 - 1) < n);
        }
        prop_assert!(mutex::tournament_depth(n, l + 1) <= depth);
    }

    /// Lemma 3's LHS is monotone in every argument, so measured profiles
    /// dominated by a satisfying profile also satisfy it.
    #[test]
    fn lemma3_monotone(l in 1u32..16, w in 1u64..40, r in 1u64..40) {
        let base = lemmas::lemma3_lhs(l, w, r);
        prop_assert!(lemmas::lemma3_lhs(l + 1, w, r) >= base);
        prop_assert!(lemmas::lemma3_lhs(l, w + 1, r) >= base);
        prop_assert!(lemmas::lemma3_lhs(l, w, r + 1) >= base);
    }

    /// Lemma 6's RHS is monotone in the profile.
    #[test]
    fn lemma6_monotone(l in 1u32..12, w in 1u64..20, c in 1u64..20) {
        let base = lemmas::lemma6_rhs_log2(l, w, c);
        prop_assert!(lemmas::lemma6_rhs_log2(l, w, c + 1) >= base);
        prop_assert!(lemmas::lemma6_rhs_log2(l, w + 1, c) >= base);
        prop_assert!(lemmas::lemma6_rhs_log2(l + 1, w, c) >= base);
    }

    /// log2(w!) matches the naive product in its stable range.
    #[test]
    fn log2_factorial_matches_product(w in 0u64..20) {
        let direct: f64 = (1..=w).map(|k| k as f64).product::<f64>().log2();
        let computed = lemmas::log2_factorial(w);
        let direct = if w == 0 { 0.0 } else { direct };
        prop_assert!((computed - direct).abs() < 1e-6, "{computed} vs {direct}");
    }

    /// ceil_log2 inverts exponentiation.
    #[test]
    fn ceil_log2_round_trip(n in 1u64..u64::MAX / 4) {
        let k = ceil_log2(n);
        prop_assert!(n <= 1u64.checked_shl(k).unwrap_or(u64::MAX));
        if k > 0 {
            prop_assert!(n > 1u64 << (k - 1));
        }
        prop_assert!((log2(n) - (n as f64).log2()).abs() < 1e-12);
    }

    /// ceil_div matches the definition.
    #[test]
    fn ceil_div_matches_definition(a in 0u64..1_000_000, b in 1u64..1_000) {
        let q = ceil_div(a, b);
        prop_assert!(q * b >= a);
        prop_assert!(q.saturating_sub(1) * b < a || a == 0);
    }

    /// Naming bounds: cf <= wc within every column, and every bound is at
    /// most n - 1.
    #[test]
    fn naming_table_internal_ordering(n_exp in 2u32..16) {
        let n = 1u64 << n_exp;
        for class in naming::ModelClass::ALL {
            let cf_reg = naming::tight_bound(class, naming::Measure::CfRegister).eval(n);
            let cf_step = naming::tight_bound(class, naming::Measure::CfStep).eval(n);
            let wc_reg = naming::tight_bound(class, naming::Measure::WcRegister).eval(n);
            let wc_step = naming::tight_bound(class, naming::Measure::WcStep).eval(n);
            prop_assert!(cf_reg <= wc_reg);
            prop_assert!(cf_step <= wc_step);
            prop_assert!(cf_reg <= cf_step);
            prop_assert!(wc_reg <= wc_step);
            prop_assert!(wc_step < n);
            // Theorem 5 floor:
            prop_assert!(cf_reg >= naming::thm5_cf_register_lower(n).min(n - 1));
        }
    }
}
