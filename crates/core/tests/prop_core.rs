//! Property-based tests for the core execution model.

use cfc_core::metrics::process_complexity;
use cfc_core::{
    run_schedule, run_sequential, run_solo, BitOp, ExecConfig, FaultPlan, Layout, Memory, Op,
    OpResult, Process, ProcessId, RegisterId, Step, Value,
};
use proptest::prelude::*;

/// A process that executes a fixed script of operations against a memory of
/// `regs` registers, recording every returned value.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Scripted {
    script: Vec<Op>,
    pc: usize,
    returns: Vec<Option<Value>>,
}

impl Scripted {
    fn new(script: Vec<Op>) -> Self {
        Scripted {
            script,
            pc: 0,
            returns: Vec::new(),
        }
    }
}

impl Process for Scripted {
    fn current(&self) -> Step {
        match self.script.get(self.pc) {
            Some(op) => Step::Op(op.clone()),
            None => Step::Halt,
        }
    }

    fn advance(&mut self, result: OpResult) {
        self.returns.push(match result {
            OpResult::Value(v) => Some(v),
            _ => None,
        });
        self.pc += 1;
    }
}

fn arb_bitop() -> impl Strategy<Value = BitOp> {
    prop::sample::select(BitOp::ALL.to_vec())
}

fn arb_op(regs: u32, width: u32) -> impl Strategy<Value = Op> {
    let reg = (0..regs).prop_map(RegisterId::new);
    prop_oneof![
        reg.clone().prop_map(Op::Read),
        (reg.clone(), 0u64..1 << width).prop_map(|(r, v)| Op::Write(r, Value::new(v))),
        (reg, arb_bitop()).prop_map(move |(r, b)| if width == 1 {
            Op::Bit(r, b)
        } else {
            Op::Read(r)
        }),
    ]
}

fn memory_with(regs: u32, width: u32) -> (Memory, Layout) {
    let mut layout = Layout::new();
    layout.array("r", regs as usize, width, 0);
    let memory = Memory::new(layout.clone(), width).unwrap();
    (memory, layout)
}

proptest! {
    /// Every register value always fits its declared width, whatever the
    /// operation sequence.
    #[test]
    fn values_stay_in_width(
        width in 1u32..8,
        ops in prop::collection::vec(arb_op(4, 7), 0..40),
    ) {
        let (memory, layout) = memory_with(4, width.max(7));
        // Re-mask ops against actual width by running them; memory masks on
        // write, so stored values must always fit.
        let (_, _, memory) = run_solo(memory, Scripted::new(ops)).unwrap();
        for r in layout.register_ids() {
            prop_assert!(memory.get(r).fits(layout.width(r).max(width)));
        }
    }

    /// Register complexity never exceeds step complexity, and bit accesses
    /// never fall below step count (every access touches >= 1 bit).
    #[test]
    fn register_leq_step_complexity(
        ops in prop::collection::vec(arb_op(5, 1), 0..60),
    ) {
        let (memory, layout) = memory_with(5, 1);
        let (trace, _, _) = run_solo(memory, Scripted::new(ops)).unwrap();
        let c = process_complexity(&trace, &layout, ProcessId::new(0));
        prop_assert!(c.registers <= c.steps);
        prop_assert!(c.read_registers <= c.registers);
        prop_assert!(c.write_registers <= c.registers);
        prop_assert!(c.bit_accesses >= c.steps);
        prop_assert_eq!(c.steps, c.read_steps + c.write_steps + c.rmw_steps);
    }

    /// The executor is deterministic: the same processes and schedule give
    /// the same trace.
    #[test]
    fn execution_is_deterministic(
        ops_a in prop::collection::vec(arb_op(3, 1), 1..20),
        ops_b in prop::collection::vec(arb_op(3, 1), 1..20),
        schedule in prop::collection::vec(0u32..2, 0..60),
    ) {
        let (memory, _) = memory_with(3, 1);
        let procs = vec![Scripted::new(ops_a), Scripted::new(ops_b)];
        let order: Vec<ProcessId> = schedule.iter().map(|&i| ProcessId::new(i)).collect();

        let run = |mem: Memory, ps: Vec<Scripted>| {
            run_schedule(
                mem,
                ps,
                cfc_core::FixedOrder::then_fair(order.clone()),
                FaultPlan::new(),
                ExecConfig::default(),
            )
            .unwrap()
        };
        let a = run(memory.clone(), procs.clone());
        let b = run(memory, procs);
        prop_assert_eq!(a.trace(), b.trace());
        prop_assert_eq!(a.memory().snapshot(), b.memory().snapshot());
    }

    /// Dual ops on complemented initial bits produce complemented results
    /// (the model-duality lemma of Section 3.2, at the memory level).
    #[test]
    fn duality_at_memory_level(
        ops in prop::collection::vec(arb_bitop(), 1..30),
        init in any::<bool>(),
    ) {
        let mut layout = Layout::new();
        let b = layout.bit("b", init);
        let mut m = Memory::new(layout, 1).unwrap();

        let mut dual_layout = Layout::new();
        let db = dual_layout.bit("b", !init);
        let mut dm = Memory::new(dual_layout, 1).unwrap();

        for op in ops {
            let r = m.apply(&Op::Bit(b, op)).unwrap();
            let dr = dm.apply(&Op::Bit(db, op.dual())).unwrap();
            match (r, dr) {
                (OpResult::None, OpResult::None) => {}
                (OpResult::Value(v), OpResult::Value(dv)) => {
                    prop_assert_eq!(v.bit(), !dv.bit());
                }
                other => prop_assert!(false, "result shape mismatch: {:?}", other),
            }
            prop_assert_eq!(m.get(b).bit(), !dm.get(db).bit());
        }
    }

    /// A solo run of process 0 equals process 0's portion of a sequential
    /// run (contention-free semantics are consistent).
    #[test]
    fn solo_matches_sequential_prefix(
        ops in prop::collection::vec(arb_op(3, 1), 1..25),
        ops_other in prop::collection::vec(arb_op(3, 1), 1..25),
    ) {
        let (memory, _) = memory_with(3, 1);
        let (solo_trace, solo_proc, _) =
            run_solo(memory.clone(), Scripted::new(ops.clone())).unwrap();
        let (seq_trace, _, procs) = run_sequential(
            memory,
            vec![Scripted::new(ops), Scripted::new(ops_other)],
        )
        .unwrap();
        prop_assert_eq!(&solo_proc.returns, &procs[0].returns);
        let solo_accesses: Vec<_> = solo_trace.accesses_by(ProcessId::new(0)).collect();
        let seq_accesses: Vec<_> = seq_trace.accesses_by(ProcessId::new(0)).collect();
        prop_assert_eq!(solo_accesses, seq_accesses);
    }

    /// Crashed processes stop exactly at their crash point.
    #[test]
    fn crashes_stop_processes(
        ops in prop::collection::vec(arb_op(2, 1), 5..30),
        crash_at in 0u64..10,
    ) {
        let (memory, _) = memory_with(2, 1);
        let n_ops = ops.len() as u64;
        let exec = run_schedule(
            memory,
            vec![Scripted::new(ops)],
            cfc_core::RoundRobin::new(),
            FaultPlan::new().with_crash(ProcessId::new(0), crash_at),
            ExecConfig::default(),
        ).unwrap();
        prop_assert_eq!(exec.steps_taken(ProcessId::new(0)), crash_at.min(n_ops));
    }
}
