//! Bit-packed state encoding: the paper's packing discipline applied to
//! the verifier's own state storage.
//!
//! Section 1.3 (and the [MS93] experiment in `benches/packing.rs`) packs
//! many narrow registers into few memory words; the exhaustive checkers
//! benefit from exactly the same move. A global state is a sequence of
//! narrow fields — per-process statuses, register values at their
//! declared [`Layout`] widths, per-process local state — and this module
//! provides the primitives to write them LSB-first into a compact byte
//! record and read them back losslessly:
//!
//! * [`StateWriter`] / [`StateReader`] — the bit-level sink and source;
//! * [`StateCodec`] — the fixed-width component-codec contract;
//! * [`LayoutCodec`] — the width-aware memory-image codec derived from a
//!   [`Layout`] (each register at its declared width);
//! * [`Process::pack_state`] / [`Process::unpack_state`] (in
//!   `crate::process`) — the per-algorithm hooks that let a process pack
//!   its own local state into a few bits instead of being interned as an
//!   opaque clone.
//!
//! Round-trip identity is the load-bearing contract: `decode(encode(x))
//! == x` for every reachable state makes the encoding injective, so
//! byte-equality of records coincides with state equality and a packed
//! visited set makes exactly the decisions a boxed one would.

use crate::ids::RegisterId;
use crate::layout::Layout;
use crate::value::Value;

/// An LSB-first bit sink state fields are packed into.
///
/// Fields are appended with [`StateWriter::push_bits`]; the first field
/// occupies the low bits of the first byte, and a record's final byte is
/// zero-padded. Reading the fields back in the same order with a
/// [`StateReader`] recovers them exactly.
#[derive(Clone, Debug, Default)]
pub struct StateWriter {
    bytes: Vec<u8>,
    len_bits: usize,
}

impl StateWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `bits`, LSB-first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `bits` has set bits at or above
    /// `width` — a field that does not fit its declared width would
    /// decode to a different value, silently breaking round-trip
    /// identity.
    pub fn push_bits(&mut self, bits: u64, width: u32) {
        assert!(width <= 64, "bit fields are at most 64 bits wide");
        assert!(
            width == 64 || bits >> width == 0,
            "field value {bits} does not fit {width} bits"
        );
        let mut val = bits;
        let mut rem = width;
        while rem > 0 {
            let bit_in_byte = (self.len_bits % 8) as u32;
            if bit_in_byte == 0 {
                self.bytes.push(0);
            }
            let take = (8 - bit_in_byte).min(rem);
            let mask = (1u64 << take) - 1;
            let byte = self.bytes.last_mut().expect("byte pushed above");
            *byte |= ((val & mask) as u8) << bit_in_byte;
            val >>= take;
            rem -= take;
            self.len_bits += take as usize;
        }
    }

    /// Appends a register value at its declared width.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit the width (see
    /// [`StateWriter::push_bits`]).
    pub fn push_value(&mut self, v: Value, width: u32) {
        self.push_bits(v.raw(), width);
    }

    /// Bits written so far. Codecs use this to assert their fixed-width
    /// contract (every encoded item of one kind occupies the same number
    /// of bits, independent of its value).
    pub fn bit_len(&self) -> usize {
        self.len_bits
    }

    /// The packed record, zero-padded to whole bytes.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// An LSB-first bit source over a packed record.
#[derive(Debug)]
pub struct StateReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader positioned at the first bit of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        StateReader { bytes, pos: 0 }
    }

    /// Reads the next `width` bits, zero-extended to a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or the record is exhausted.
    pub fn take_bits(&mut self, width: u32) -> u64 {
        assert!(width <= 64, "bit fields are at most 64 bits wide");
        let mut out = 0u64;
        let mut got = 0u32;
        while got < width {
            let byte = self.bytes[self.pos / 8];
            let bit_in_byte = (self.pos % 8) as u32;
            let take = (8 - bit_in_byte).min(width - got);
            let field = (u64::from(byte) >> bit_in_byte) & ((1u64 << take) - 1);
            out |= field << got;
            got += take;
            self.pos += take as usize;
        }
        out
    }

    /// Reads the next `width` bits as a [`Value`].
    pub fn take_value(&mut self, width: u32) -> Value {
        Value::new(self.take_bits(width))
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

/// A fixed-width binary codec for one kind of state component.
///
/// Implementations must be *fixed-width* ([`StateCodec::encoded_bits`]
/// is independent of the item's value) and *lossless*
/// (`decode(encode(x)) == x`); the packed visited set in `cfc-verify`
/// relies on both to store states at fixed stride and to substitute
/// byte-equality for state equality.
pub trait StateCodec {
    /// The decoded form.
    type Item;

    /// The exact number of bits every encoded item occupies.
    fn encoded_bits(&self) -> usize;

    /// Appends `item` to `w` — exactly [`StateCodec::encoded_bits`] bits.
    fn encode(&self, item: &Self::Item, w: &mut StateWriter);

    /// Reads one item back from `r`.
    fn decode(&self, r: &mut StateReader<'_>) -> Self::Item;
}

/// The width-aware memory-image codec: a register snapshot encodes as
/// each value at its register's declared [`Layout`] width, in register
/// order — the same per-word accounting the packing experiment measures,
/// applied to the verifier's own footprint.
///
/// Stored values always fit their width ([`crate::Memory`] rejects
/// over-wide plain writes and masks pokes), so the encoding is exact.
#[derive(Clone, Debug)]
pub struct LayoutCodec {
    widths: Vec<u32>,
    total_bits: usize,
}

impl LayoutCodec {
    /// Derives the codec from a layout's register widths.
    pub fn new(layout: &Layout) -> Self {
        let widths: Vec<u32> = (0..layout.len())
            .map(|i| layout.width(RegisterId::new(i as u32)))
            .collect();
        let total_bits = widths.iter().map(|&w| w as usize).sum();
        LayoutCodec { widths, total_bits }
    }

    /// The per-register widths, in register order.
    pub fn widths(&self) -> &[u32] {
        &self.widths
    }
}

impl StateCodec for LayoutCodec {
    type Item = Vec<Value>;

    fn encoded_bits(&self) -> usize {
        self.total_bits
    }

    /// # Panics
    ///
    /// Panics if the snapshot length differs from the layout's register
    /// count, or a value does not fit its register's width.
    fn encode(&self, values: &Vec<Value>, w: &mut StateWriter) {
        assert_eq!(
            values.len(),
            self.widths.len(),
            "snapshot length must match the layout"
        );
        for (v, &width) in values.iter().zip(&self.widths) {
            w.push_value(*v, width);
        }
    }

    fn decode(&self, r: &mut StateReader<'_>) -> Vec<Value> {
        self.widths.iter().map(|&w| r.take_value(w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip_across_byte_boundaries() {
        let mut w = StateWriter::new();
        w.push_bits(0b101, 3);
        w.push_bits(0x3FF, 10); // straddles two byte boundaries
        w.push_bits(0, 1);
        w.push_bits(u64::MAX, 64);
        w.push_bits(1, 1);
        assert_eq!(w.bit_len(), 3 + 10 + 1 + 64 + 1);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 10); // 79 bits -> 10 bytes
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.take_bits(3), 0b101);
        assert_eq!(r.take_bits(10), 0x3FF);
        assert_eq!(r.take_bits(1), 0);
        assert_eq!(r.take_bits(64), u64::MAX);
        assert_eq!(r.take_bits(1), 1);
        assert_eq!(r.bit_pos(), 79);
    }

    #[test]
    fn zero_width_fields_are_free() {
        let mut w = StateWriter::new();
        w.push_bits(0, 0);
        w.push_bits(0b11, 2);
        w.push_bits(0, 0);
        assert_eq!(w.bit_len(), 2);
        let bytes = w.finish();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.take_bits(0), 0);
        assert_eq!(r.take_bits(2), 0b11);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn over_wide_fields_are_rejected() {
        StateWriter::new().push_bits(0b100, 2);
    }

    #[test]
    fn layout_codec_packs_at_declared_widths() {
        let mut layout = Layout::new();
        layout.register("a", 3, 5);
        layout.bit("b", true);
        layout.register("c", 16, 1234);
        let codec = LayoutCodec::new(&layout);
        assert_eq!(codec.widths(), &[3, 1, 16]);
        assert_eq!(codec.encoded_bits(), 20);

        let snapshot = vec![Value::new(5), Value::ONE, Value::new(1234)];
        let mut w = StateWriter::new();
        codec.encode(&snapshot, &mut w);
        assert_eq!(w.bit_len(), 20);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 3);
        let mut r = StateReader::new(&bytes);
        assert_eq!(codec.decode(&mut r), snapshot);
    }

    #[test]
    fn layout_codec_is_injective_on_distinct_snapshots() {
        let mut layout = Layout::new();
        layout.register("x", 4, 0);
        layout.register("y", 4, 0);
        let codec = LayoutCodec::new(&layout);
        let enc = |a: u64, b: u64| {
            let mut w = StateWriter::new();
            codec.encode(&vec![Value::new(a), Value::new(b)], &mut w);
            w.finish()
        };
        // (1, 0) and (0, 1) must not collide — field order matters.
        assert_ne!(enc(1, 0), enc(0, 1));
        assert_eq!(enc(9, 3), enc(9, 3));
    }
}
