//! Run traces: the recorded event sequence of an execution.

use std::fmt;

use crate::ids::ProcessId;
use crate::op::{Op, OpResult};
use crate::process::Section;
use crate::value::Value;

/// What happened in one event of a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// The process accessed shared memory.
    Access {
        /// The operation performed.
        op: Op,
        /// The value(s) it returned.
        result: OpResult,
    },
    /// The process performed local computation only.
    Internal,
    /// The process's mutual-exclusion section changed (annotation emitted
    /// by the executor after the event that caused the change; a marker,
    /// not a step).
    Section(Section),
    /// The process crashed (stopping failure) and takes no further steps.
    Crash,
    /// The process halted, with its decision value if any.
    Done {
        /// The process's output (e.g. a name, or a detector's 0/1).
        output: Option<Value>,
    },
}

/// One event of a run: a step (or annotation) belonging to one process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// The process this event belongs to.
    pub pid: ProcessId,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Returns the access operation if this event is a shared-memory access.
    pub fn access(&self) -> Option<(&Op, &OpResult)> {
        match &self.kind {
            EventKind::Access { op, result } => Some((op, result)),
            _ => None,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            EventKind::Access { op, result } => match result {
                OpResult::None => write!(f, "{}: {}", self.pid, op),
                OpResult::Value(v) => write!(f, "{}: {} -> {}", self.pid, op, v),
                OpResult::Values(vs) => {
                    write!(f, "{}: {} ->", self.pid, op)?;
                    for v in vs {
                        write!(f, " {v}")?;
                    }
                    Ok(())
                }
            },
            EventKind::Internal => write!(f, "{}: (internal)", self.pid),
            EventKind::Section(s) => write!(f, "{}: [section {s}]", self.pid),
            EventKind::Crash => write!(f, "{}: CRASH", self.pid),
            EventKind::Done { output: Some(v) } => write!(f, "{}: done -> {}", self.pid, v),
            EventKind::Done { output: None } => write!(f, "{}: done", self.pid),
        }
    }
}

/// The recorded event sequence of a run.
///
/// A `Trace` is what the complexity metrics in [`metrics`](crate::metrics)
/// consume: step and register complexity of a process are functions of the
/// access events belonging to it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// The number of recorded events (including annotations).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterates over all events.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// The number of shared-memory access events (across all processes).
    pub fn access_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Access { .. }))
            .count()
    }

    /// Iterates over the access events of one process.
    pub fn accesses_by(&self, pid: ProcessId) -> impl Iterator<Item = (&Op, &OpResult)> {
        self.events
            .iter()
            .filter(move |e| e.pid == pid)
            .filter_map(|e| e.access())
    }

    /// The output value recorded in a process's `Done` event, if present.
    pub fn output_of(&self, pid: ProcessId) -> Option<Value> {
        self.events.iter().rev().find_map(|e| {
            if e.pid == pid {
                if let EventKind::Done { output } = e.kind {
                    return output;
                }
            }
            None
        })
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.events.iter().enumerate() {
            writeln!(f, "{i:>5}  {e}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<T: IntoIterator<Item = Event>>(iter: T) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<Event> for Trace {
    fn extend<T: IntoIterator<Item = Event>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RegisterId;

    fn access(pid: u32, reg: u32) -> Event {
        Event {
            pid: ProcessId::new(pid),
            kind: EventKind::Access {
                op: Op::Read(RegisterId::new(reg)),
                result: OpResult::Value(Value::ZERO),
            },
        }
    }

    #[test]
    fn counts_accesses() {
        let mut t = Trace::new();
        t.push(access(0, 0));
        t.push(Event {
            pid: ProcessId::new(0),
            kind: EventKind::Internal,
        });
        t.push(access(1, 1));
        assert_eq!(t.len(), 3);
        assert_eq!(t.access_count(), 2);
        assert_eq!(t.accesses_by(ProcessId::new(0)).count(), 1);
    }

    #[test]
    fn output_of_finds_done_event() {
        let mut t = Trace::new();
        t.push(Event {
            pid: ProcessId::new(2),
            kind: EventKind::Done {
                output: Some(Value::new(7)),
            },
        });
        assert_eq!(t.output_of(ProcessId::new(2)), Some(Value::new(7)));
        assert_eq!(t.output_of(ProcessId::new(0)), None);
    }

    #[test]
    fn collects_from_iterator() {
        let t: Trace = vec![access(0, 0), access(0, 1)].into_iter().collect();
        assert_eq!(t.len(), 2);
        let mut t2 = Trace::new();
        t2.extend(t.iter().cloned());
        assert_eq!(t2, t);
    }

    #[test]
    fn display_renders_each_event() {
        let mut t = Trace::new();
        t.push(access(0, 3));
        t.push(Event {
            pid: ProcessId::new(1),
            kind: EventKind::Crash,
        });
        let s = t.to_string();
        assert!(s.contains("read(r3)"));
        assert!(s.contains("CRASH"));
    }
}
