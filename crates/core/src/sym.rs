//! Process-symmetry groups for state-space reduction.
//!
//! Many of the paper's algorithms run sets of *interchangeable* processes:
//! the naming algorithms of Section 3 are **structurally** symmetric —
//! every participant starts from the identical state and diverges only
//! through returned bit values — and the mutual-exclusion clients step
//! through index-oblivious semantics (the executor never consults a
//! process's position when applying its operations). A [`SymmetryGroup`]
//! records which process indices may be permuted without changing the
//! behaviour of the system, as a partition of `0..n` into classes; the
//! symmetry-reduced explorer in `cfc-verify` canonicalizes visited-state
//! keys by sorting the local states of each class, exploring one
//! representative per orbit.

/// A partition of the process indices `0..n` into classes of
/// interchangeable processes.
///
/// Soundness contract: permuting the processes of one class (their local
/// states and liveness statuses, leaving shared memory untouched) must map
/// reachable global states to equally-behaving global states. This holds
/// whenever processes of a class run the same program text parameterized
/// only by their local state — true for all algorithms in this workspace,
/// where a process's next step is a pure function of its own state.
/// Checked properties must additionally be invariant under such
/// permutations (e.g. "at most one process in the critical section",
/// "decided names are pairwise distinct").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymmetryGroup {
    n: usize,
    classes: Vec<Vec<usize>>,
}

impl SymmetryGroup {
    /// The trivial group over `n` processes: nothing is interchangeable.
    ///
    /// Under this group, symmetry reduction is the identity — the reduced
    /// explorer behaves exactly like the baseline.
    pub fn trivial(n: usize) -> Self {
        SymmetryGroup {
            n,
            classes: Vec::new(),
        }
    }

    /// The full symmetric group over `n` processes: every pair of
    /// processes is interchangeable.
    pub fn full(n: usize) -> Self {
        let classes = if n >= 2 {
            vec![(0..n).collect()]
        } else {
            Vec::new()
        };
        SymmetryGroup { n, classes }
    }

    /// A group from explicit classes; singleton and empty classes are
    /// dropped (they contribute nothing).
    ///
    /// # Panics
    ///
    /// Panics if an index is `>= n` or appears in two classes.
    pub fn from_classes(n: usize, classes: Vec<Vec<usize>>) -> Self {
        let mut seen = vec![false; n];
        let mut kept = Vec::new();
        for mut class in classes {
            class.sort_unstable();
            for &i in &class {
                assert!(i < n, "symmetry class index {i} out of range (n = {n})");
                assert!(!seen[i], "process {i} appears in two symmetry classes");
                seen[i] = true;
            }
            if class.len() >= 2 {
                kept.push(class);
            }
        }
        SymmetryGroup { n, classes: kept }
    }

    /// The number of processes the group is defined over.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The non-singleton classes, each sorted ascending.
    pub fn classes(&self) -> &[Vec<usize>] {
        &self.classes
    }

    /// Does the group permit no permutation at all?
    pub fn is_trivial(&self) -> bool {
        self.classes.iter().all(|c| c.len() < 2)
    }

    /// The product of the class factorials: how many permutations the
    /// group admits (the maximal orbit size).
    pub fn order(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| (1..=c.len() as u64).product::<u64>())
            .product()
    }

    /// The stabilizer of process `fixed`: the subgroup whose permutations
    /// leave `fixed` in place. Concretely, `fixed` is removed from its
    /// class (a class of size 2 thereby dissolves); all other classes are
    /// untouched.
    ///
    /// The per-victim liveness checker in `cfc-verify` quotients the
    /// state graph by this subgroup so that the identity of the
    /// (potentially starved) victim survives canonicalization while its
    /// peers still merge orbits.
    ///
    /// # Panics
    ///
    /// Panics if `fixed >= n`.
    pub fn stabilizer(&self, fixed: usize) -> SymmetryGroup {
        assert!(fixed < self.n, "process {fixed} out of range (n = {})", self.n);
        let classes = self
            .classes
            .iter()
            .map(|c| c.iter().copied().filter(|&i| i != fixed).collect())
            .collect();
        SymmetryGroup::from_classes(self.n, classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_and_full() {
        assert!(SymmetryGroup::trivial(4).is_trivial());
        assert_eq!(SymmetryGroup::trivial(4).order(), 1);
        let full = SymmetryGroup::full(4);
        assert!(!full.is_trivial());
        assert_eq!(full.classes(), &[vec![0, 1, 2, 3]]);
        assert_eq!(full.order(), 24);
        // Degenerate sizes are trivial.
        assert!(SymmetryGroup::full(1).is_trivial());
        assert!(SymmetryGroup::full(0).is_trivial());
    }

    #[test]
    fn from_classes_drops_singletons_and_sorts() {
        let g = SymmetryGroup::from_classes(5, vec![vec![3, 1], vec![2], vec![]]);
        assert_eq!(g.classes(), &[vec![1, 3]]);
        assert_eq!(g.n(), 5);
        assert_eq!(g.order(), 2);
    }

    #[test]
    fn stabilizer_fixes_the_victim() {
        let full = SymmetryGroup::full(4);
        let stab = full.stabilizer(1);
        assert_eq!(stab.classes(), &[vec![0, 2, 3]]);
        assert_eq!(stab.n(), 4);
        assert_eq!(stab.order(), 6);
        // A pair dissolves entirely.
        assert!(SymmetryGroup::full(2).stabilizer(0).is_trivial());
        // Fixing a process outside every class changes nothing.
        let g = SymmetryGroup::from_classes(4, vec![vec![1, 2]]);
        assert_eq!(g.stabilizer(3).classes(), g.classes());
        // The trivial group stays trivial.
        assert!(SymmetryGroup::trivial(3).stabilizer(2).is_trivial());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stabilizer_rejects_out_of_range() {
        let _ = SymmetryGroup::full(2).stabilizer(2);
    }

    #[test]
    #[should_panic(expected = "two symmetry classes")]
    fn overlapping_classes_rejected() {
        let _ = SymmetryGroup::from_classes(3, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = SymmetryGroup::from_classes(2, vec![vec![0, 5]]);
    }
}
