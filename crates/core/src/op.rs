//! Shared-memory operations, their results, and process steps.

use std::fmt;

use crate::bitop::BitOp;
use crate::ids::{RegisterId, WordId};
use crate::layout::Layout;
use crate::value::Value;

/// One atomic shared-memory operation.
///
/// `Read`, `Write` and `Bit` touch a single register; `ReadWord` and
/// `WriteWord` atomically access a packed word (multi-grain access in the
/// style of [MS93]). An operation is one *event* in the paper's run
/// semantics, and counts as one step for step complexity.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Atomically read a register; the result is its value.
    Read(RegisterId),
    /// Atomically write a value to a register; no result.
    Write(RegisterId, Value),
    /// Apply one of the eight single-bit operations to a 1-bit register.
    Bit(RegisterId, BitOp),
    /// Atomically read every field of a packed word.
    ReadWord(WordId),
    /// Atomically write a subset of the fields of a packed word.
    WriteWord(WordId, Vec<(RegisterId, Value)>),
}

/// Whether an access reads, writes, or does both (read–modify–write).
///
/// The paper's mutual-exclusion bounds distinguish *read-step* and
/// *write-step* complexity (Section 2.2); bit operations that both return
/// and mutate are classified as [`AccessClass::ReadWrite`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// The access only observes memory.
    Read,
    /// The access only mutates memory.
    Write,
    /// The access observes and mutates in one step (e.g. `test-and-set`).
    ReadWrite,
}

impl AccessClass {
    /// Does this access observe memory?
    pub const fn reads(self) -> bool {
        matches!(self, AccessClass::Read | AccessClass::ReadWrite)
    }

    /// Does this access mutate memory?
    pub const fn writes(self) -> bool {
        matches!(self, AccessClass::Write | AccessClass::ReadWrite)
    }
}

impl Op {
    /// Classifies the access as read, write, or read–modify–write.
    pub fn class(&self) -> AccessClass {
        match self {
            Op::Read(_) | Op::ReadWord(_) => AccessClass::Read,
            Op::Write(..) | Op::WriteWord(..) => AccessClass::Write,
            Op::Bit(_, b) => match (b.returns_value(), b.mutates()) {
                (true, true) => AccessClass::ReadWrite,
                (true, false) => AccessClass::Read,
                (false, true) => AccessClass::Write,
                // `skip` neither reads nor writes, but it still occupies an
                // atomic access to the register; classify as a read.
                (false, false) => AccessClass::Read,
            },
        }
    }

    /// The registers this operation accesses, in field order.
    ///
    /// For packed-word operations this is every *accessed* field: all
    /// members for `ReadWord`, the written subset for `WriteWord`.
    pub fn registers<'a>(&'a self, layout: &'a Layout) -> Vec<RegisterId> {
        match self {
            Op::Read(r) | Op::Write(r, _) | Op::Bit(r, _) => vec![*r],
            Op::ReadWord(w) => layout.word_members(*w).unwrap_or(&[]).to_vec(),
            Op::WriteWord(_, fields) => fields.iter().map(|&(r, _)| r).collect(),
        }
    }

    /// The read/write footprint of this operation: its accessed registers,
    /// split into read and write location sets by [`Op::class`].
    ///
    /// Two operations whose footprints are
    /// [`independent`](crate::Footprint::independent) commute; the
    /// partial-order-reduced explorer in `cfc-verify` is built on this
    /// relation.
    pub fn footprint(&self, layout: &Layout) -> crate::Footprint {
        crate::Footprint::of_op(self, layout)
    }

    /// The total number of bits this operation touches.
    ///
    /// The corollary to Theorem 1 counts accesses *to shared bits*: one
    /// access to an `l`-bit register is `l` bit accesses.
    pub fn bit_width(&self, layout: &Layout) -> u64 {
        self.registers(layout)
            .iter()
            .map(|&r| u64::from(layout.width(r)))
            .sum()
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read(r) => write!(f, "read({r})"),
            Op::Write(r, v) => write!(f, "write({r}, {v})"),
            Op::Bit(r, b) => write!(f, "{b}({r})"),
            Op::ReadWord(w) => write!(f, "read-word({w})"),
            Op::WriteWord(w, fields) => {
                write!(f, "write-word({w}")?;
                for (r, v) in fields {
                    write!(f, ", {r}={v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// The result of applying an [`Op`] to memory.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum OpResult {
    /// The operation returned nothing (writes; non-returning bit ops).
    #[default]
    None,
    /// The operation returned a single value.
    Value(Value),
    /// The operation returned one value per accessed field (`ReadWord`).
    Values(Vec<Value>),
}

impl OpResult {
    /// The returned value.
    ///
    /// # Panics
    ///
    /// Panics if the result is not a single value; algorithms call this only
    /// on the results of operations that return one value.
    pub fn value(&self) -> Value {
        match self {
            OpResult::Value(v) => *v,
            other => panic!("expected single value result, got {other:?}"),
        }
    }

    /// The returned value interpreted as a bit.
    ///
    /// # Panics
    ///
    /// Panics if the result is not a single value.
    pub fn bit(&self) -> bool {
        self.value().bit()
    }

    /// The returned values of a multi-field read.
    ///
    /// # Panics
    ///
    /// Panics if the result is not a `Values` vector.
    pub fn values(&self) -> &[Value] {
        match self {
            OpResult::Values(vs) => vs,
            other => panic!("expected multi-value result, got {other:?}"),
        }
    }

    /// Returns `true` for [`OpResult::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, OpResult::None)
    }
}

/// The next atomic step a process wishes to take.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Step {
    /// Access shared memory.
    Op(Op),
    /// Perform local computation only (does not count toward step
    /// complexity).
    Internal,
    /// The process has terminated.
    Halt,
}

impl Step {
    /// Returns the contained operation, if this step accesses memory.
    pub fn op(&self) -> Option<&Op> {
        match self {
            Step::Op(op) => Some(op),
            _ => None,
        }
    }

    /// The read/write footprint of this step: the operation's footprint,
    /// or the empty footprint for [`Step::Internal`] and [`Step::Halt`]
    /// (purely local steps are independent of everything).
    pub fn footprint(&self, layout: &Layout) -> crate::Footprint {
        crate::Footprint::of_step(self, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_of_plain_ops() {
        let r = RegisterId::new(0);
        assert_eq!(Op::Read(r).class(), AccessClass::Read);
        assert_eq!(Op::Write(r, Value::ONE).class(), AccessClass::Write);
        assert_eq!(Op::ReadWord(WordId::new(0)).class(), AccessClass::Read);
        assert_eq!(
            Op::WriteWord(WordId::new(0), vec![(r, Value::ONE)]).class(),
            AccessClass::Write
        );
    }

    #[test]
    fn classification_of_bit_ops() {
        let r = RegisterId::new(0);
        assert_eq!(Op::Bit(r, BitOp::Read).class(), AccessClass::Read);
        assert_eq!(Op::Bit(r, BitOp::Skip).class(), AccessClass::Read);
        assert_eq!(Op::Bit(r, BitOp::Write1).class(), AccessClass::Write);
        assert_eq!(Op::Bit(r, BitOp::Flip).class(), AccessClass::Write);
        assert_eq!(Op::Bit(r, BitOp::TestAndSet).class(), AccessClass::ReadWrite);
        assert_eq!(Op::Bit(r, BitOp::TestAndFlip).class(), AccessClass::ReadWrite);
    }

    #[test]
    fn access_class_predicates() {
        assert!(AccessClass::Read.reads());
        assert!(!AccessClass::Read.writes());
        assert!(AccessClass::ReadWrite.reads());
        assert!(AccessClass::ReadWrite.writes());
        assert!(AccessClass::Write.writes());
    }

    #[test]
    fn registers_and_bit_width() {
        let mut layout = Layout::new();
        let x = layout.register("x", 4, 0);
        let y = layout.register("y", 3, 0);
        let w = layout.pack(&[x, y]).unwrap();

        assert_eq!(Op::Read(x).registers(&layout), vec![x]);
        assert_eq!(Op::ReadWord(w).registers(&layout), vec![x, y]);
        assert_eq!(
            Op::WriteWord(w, vec![(y, Value::ONE)]).registers(&layout),
            vec![y]
        );
        assert_eq!(Op::Read(x).bit_width(&layout), 4);
        assert_eq!(Op::ReadWord(w).bit_width(&layout), 7);
    }

    #[test]
    fn op_result_accessors() {
        assert!(OpResult::None.is_none());
        assert_eq!(OpResult::Value(Value::new(3)).value(), Value::new(3));
        assert!(OpResult::Value(Value::ONE).bit());
        let vs = OpResult::Values(vec![Value::ZERO, Value::ONE]);
        assert_eq!(vs.values().len(), 2);
    }

    #[test]
    #[should_panic(expected = "expected single value")]
    fn op_result_value_panics_on_none() {
        let _ = OpResult::None.value();
    }

    #[test]
    fn display_forms() {
        let r = RegisterId::new(2);
        assert_eq!(Op::Read(r).to_string(), "read(r2)");
        assert_eq!(Op::Write(r, Value::new(5)).to_string(), "write(r2, 5)");
        assert_eq!(
            Op::Bit(r, BitOp::TestAndSet).to_string(),
            "test-and-set(r2)"
        );
    }
}
