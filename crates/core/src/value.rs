//! Register values and bit-width helpers.

use std::fmt;

/// The maximum width, in bits, of a single register.
///
/// Values are stored in a `u64`; one bit is reserved so that `1 << width`
/// never overflows in mask arithmetic.
pub const MAX_WIDTH: u32 = 63;

/// The value held by (or written to) a shared register.
///
/// A `Value` is an unsigned integer; the register's declared width
/// determines how many low bits are significant. [`Memory`](crate::Memory)
/// rejects any write whose value exceeds its register's width (a
/// structured [`MemoryError::ValueTooWide`](crate::MemoryError) — never a
/// silent truncation), and the test/setup hook
/// [`Memory::poke`](crate::Memory::poke) masks, so a *stored* `Value`
/// never exceeds its register's width — the invariant the bit-packed
/// state codec ([`crate::LayoutCodec`]) relies on.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value(u64);

impl Value {
    /// The value `0`.
    pub const ZERO: Value = Value(0);
    /// The value `1`.
    pub const ONE: Value = Value(1);

    /// Creates a value from a raw integer.
    pub const fn new(raw: u64) -> Self {
        Value(raw)
    }

    /// Returns the raw integer.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns this value truncated to `width` low bits.
    pub const fn masked(self, width: u32) -> Self {
        Value(self.0 & mask(width))
    }

    /// Interprets the value as a single bit (its least-significant bit).
    pub const fn bit(self) -> bool {
        self.0 & 1 != 0
    }

    /// Returns `true` if the value fits in `width` bits.
    pub const fn fits(self, width: u32) -> bool {
        self.0 & !mask(width) == 0
    }
}

impl From<u64> for Value {
    fn from(raw: u64) -> Self {
        Value(raw)
    }
}

impl From<bool> for Value {
    fn from(bit: bool) -> Self {
        Value(bit as u64)
    }
}

impl From<Value> for u64 {
    fn from(v: Value) -> u64 {
        v.0
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value({})", self.0)
    }
}

impl fmt::Binary for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Returns the bit mask with the `width` low bits set.
///
/// Widths of [`MAX_WIDTH`] or more saturate to all 63 usable bits.
pub const fn mask(width: u32) -> u64 {
    if width >= MAX_WIDTH {
        (1u64 << MAX_WIDTH) - 1
    } else {
        (1u64 << width) - 1
    }
}

/// Returns the number of bits needed to store any value in `0..=max`.
///
/// This is the register width an algorithm needs for a field whose largest
/// value is `max`. `bits_for(0) == 1` (a register always has at least one
/// bit).
pub const fn bits_for(max: u64) -> u32 {
    if max == 0 {
        1
    } else {
        64 - max.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_truncates() {
        assert_eq!(Value::new(0b1011).masked(2), Value::new(0b11));
        assert_eq!(Value::new(0xFF).masked(8), Value::new(0xFF));
        assert_eq!(Value::new(u64::MAX).masked(MAX_WIDTH).raw(), mask(MAX_WIDTH));
    }

    #[test]
    fn bit_view() {
        assert!(Value::new(1).bit());
        assert!(!Value::new(2).bit());
        assert!(Value::from(true).bit());
        assert!(!Value::from(false).bit());
    }

    #[test]
    fn fits_checks_width() {
        assert!(Value::new(3).fits(2));
        assert!(!Value::new(4).fits(2));
        assert!(Value::new(0).fits(1));
    }

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }

    #[test]
    fn mask_saturates() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(8), 0xFF);
        assert_eq!(mask(100), mask(MAX_WIDTH));
    }

    #[test]
    fn display_formats() {
        let v = Value::new(10);
        assert_eq!(v.to_string(), "10");
        assert_eq!(format!("{v:?}"), "Value(10)");
        assert_eq!(format!("{v:b}"), "1010");
        assert_eq!(format!("{v:x}"), "a");
    }
}
