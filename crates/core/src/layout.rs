//! Declarations of shared registers and packed words.

use std::fmt;

use crate::error::LayoutError;
use crate::ids::{RegisterId, WordId};
use crate::value::{Value, MAX_WIDTH};

/// The declaration of one shared register.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegisterSpec {
    name: String,
    width: u32,
    init: Value,
    word: Option<WordId>,
}

impl RegisterSpec {
    /// The register's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The register's width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The register's initial value.
    pub fn init(&self) -> Value {
        self.init
    }

    /// The packed word this register belongs to, if any.
    pub fn word(&self) -> Option<WordId> {
        self.word
    }
}

/// A declaration of the shared memory used by an algorithm: a set of
/// registers with widths and initial values, plus optional *packed words*
/// grouping several registers for multi-grain atomic access [MS93].
///
/// # Examples
///
/// ```
/// use cfc_core::Layout;
///
/// let mut layout = Layout::new();
/// let x = layout.register("x", 4, 0);
/// let y = layout.bit("y", false);
/// assert_eq!(layout.width(x), 4);
/// assert_eq!(layout.width(y), 1);
/// assert_eq!(layout.max_register_width(), 4);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Layout {
    regs: Vec<RegisterSpec>,
    words: Vec<Vec<RegisterId>>,
}

impl Layout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Layout::default()
    }

    /// Declares a register of `width` bits initialized to `init`.
    ///
    /// # Panics
    ///
    /// Panics if the width is zero or exceeds [`MAX_WIDTH`], or if `init`
    /// does not fit in `width` bits. Use [`Layout::try_register`] for a
    /// fallible version.
    pub fn register(&mut self, name: impl Into<String>, width: u32, init: u64) -> RegisterId {
        match self.try_register(name, width, init) {
            Ok(r) => r,
            Err(e) => panic!("invalid register declaration: {e}"),
        }
    }

    /// Declares a register, returning an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidWidth`] for a zero or oversized width,
    /// or [`LayoutError::InitTooWide`] if `init` does not fit.
    pub fn try_register(
        &mut self,
        name: impl Into<String>,
        width: u32,
        init: u64,
    ) -> Result<RegisterId, LayoutError> {
        let name = name.into();
        if width == 0 || width > MAX_WIDTH {
            return Err(LayoutError::InvalidWidth { name, width });
        }
        let init = Value::new(init);
        if !init.fits(width) {
            return Err(LayoutError::InitTooWide {
                name,
                width,
                init: init.raw(),
            });
        }
        let id = RegisterId::new(self.regs.len() as u32);
        self.regs.push(RegisterSpec {
            name,
            width,
            init,
            word: None,
        });
        Ok(id)
    }

    /// Declares a single-bit register.
    pub fn bit(&mut self, name: impl Into<String>, init: bool) -> RegisterId {
        self.register(name, 1, init as u64)
    }

    /// Declares `count` single-bit registers named `prefix[0..count]`.
    pub fn bits(&mut self, prefix: &str, count: usize, init: bool) -> Vec<RegisterId> {
        (0..count)
            .map(|i| self.bit(format!("{prefix}[{i}]"), init))
            .collect()
    }

    /// Declares `count` registers of `width` bits named `prefix[0..count]`.
    pub fn array(&mut self, prefix: &str, count: usize, width: u32, init: u64) -> Vec<RegisterId> {
        (0..count)
            .map(|i| self.register(format!("{prefix}[{i}]"), width, init))
            .collect()
    }

    /// Packs registers into one word for multi-grain atomic access.
    ///
    /// All fields of a word can be read — and any subset written — in a
    /// single atomic event, provided the word's total width does not exceed
    /// the system atomicity (checked by [`Memory::new`](crate::Memory::new)).
    ///
    /// # Errors
    ///
    /// Returns an error if a register is unknown, already packed, or the
    /// list is empty.
    pub fn pack(&mut self, regs: &[RegisterId]) -> Result<WordId, LayoutError> {
        if regs.is_empty() {
            return Err(LayoutError::EmptyWord);
        }
        for &r in regs {
            let spec = self
                .regs
                .get(r.index())
                .ok_or(LayoutError::UnknownRegister(r))?;
            if spec.word.is_some() {
                return Err(LayoutError::AlreadyPacked(r));
            }
        }
        let id = WordId::new(self.words.len() as u32);
        for &r in regs {
            self.regs[r.index()].word = Some(id);
        }
        self.words.push(regs.to_vec());
        Ok(id)
    }

    /// The number of registers declared.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Returns `true` if no registers are declared.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// The number of packed words declared.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The specification of a register.
    ///
    /// # Panics
    ///
    /// Panics if the register id is out of range.
    pub fn spec(&self, r: RegisterId) -> &RegisterSpec {
        &self.regs[r.index()]
    }

    /// Looks up a register specification without panicking.
    pub fn get(&self, r: RegisterId) -> Option<&RegisterSpec> {
        self.regs.get(r.index())
    }

    /// The width of a register in bits.
    pub fn width(&self, r: RegisterId) -> u32 {
        self.spec(r).width
    }

    /// The initial value of a register.
    pub fn init(&self, r: RegisterId) -> Value {
        self.spec(r).init
    }

    /// The diagnostic name of a register.
    pub fn name(&self, r: RegisterId) -> &str {
        &self.spec(r).name
    }

    /// The member registers of a packed word, in field order.
    pub fn word_members(&self, w: WordId) -> Option<&[RegisterId]> {
        self.words.get(w.index()).map(Vec::as_slice)
    }

    /// The total width of a packed word in bits.
    pub fn word_width(&self, w: WordId) -> Option<u32> {
        self.words
            .get(w.index())
            .map(|members| members.iter().map(|&r| self.width(r)).sum())
    }

    /// The width of the widest single register.
    ///
    /// Together with packed-word widths this determines the minimum
    /// atomicity the layout requires.
    pub fn max_register_width(&self) -> u32 {
        self.regs.iter().map(|s| s.width).max().unwrap_or(0)
    }

    /// The minimum atomicity `l` that can host this layout: the maximum of
    /// all register widths and packed-word widths.
    pub fn required_atomicity(&self) -> u32 {
        let word_max = (0..self.words.len())
            .filter_map(|i| self.word_width(WordId::new(i as u32)))
            .max()
            .unwrap_or(0);
        self.max_register_width().max(word_max)
    }

    /// Iterates over `(RegisterId, &RegisterSpec)` pairs in declaration
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (RegisterId, &RegisterSpec)> {
        self.regs
            .iter()
            .enumerate()
            .map(|(i, s)| (RegisterId::new(i as u32), s))
    }

    /// All register ids in declaration order.
    pub fn register_ids(&self) -> impl Iterator<Item = RegisterId> {
        (0..self.regs.len() as u32).map(RegisterId::new)
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "layout ({} registers, {} words):", self.len(), self.word_count())?;
        for (id, spec) in self.iter() {
            write!(
                f,
                "  {id} {name}: {width} bit(s), init {init}",
                name = spec.name(),
                width = spec.width(),
                init = spec.init()
            )?;
            if let Some(w) = spec.word() {
                write!(f, " (packed in {w})")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_registers_in_order() {
        let mut layout = Layout::new();
        let a = layout.register("a", 3, 5);
        let b = layout.bit("b", true);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(layout.len(), 2);
        assert_eq!(layout.name(a), "a");
        assert_eq!(layout.init(a), Value::new(5));
        assert_eq!(layout.width(b), 1);
        assert_eq!(layout.init(b), Value::ONE);
    }

    #[test]
    fn rejects_bad_widths() {
        let mut layout = Layout::new();
        assert!(matches!(
            layout.try_register("z", 0, 0),
            Err(LayoutError::InvalidWidth { .. })
        ));
        assert!(matches!(
            layout.try_register("z", 64, 0),
            Err(LayoutError::InvalidWidth { .. })
        ));
    }

    #[test]
    fn rejects_oversized_init() {
        let mut layout = Layout::new();
        assert!(matches!(
            layout.try_register("z", 2, 4),
            Err(LayoutError::InitTooWide { .. })
        ));
    }

    #[test]
    fn bits_helper_names_elements() {
        let mut layout = Layout::new();
        let bs = layout.bits("b", 3, false);
        assert_eq!(bs.len(), 3);
        assert_eq!(layout.name(bs[2]), "b[2]");
    }

    #[test]
    fn packing_groups_registers() {
        let mut layout = Layout::new();
        let x = layout.register("x", 4, 0);
        let y = layout.register("y", 4, 0);
        let z = layout.bit("z", false);
        let w = layout.pack(&[x, y]).unwrap();
        assert_eq!(layout.word_members(w), Some(&[x, y][..]));
        assert_eq!(layout.word_width(w), Some(8));
        assert_eq!(layout.spec(x).word(), Some(w));
        assert_eq!(layout.spec(z).word(), None);
        assert_eq!(layout.required_atomicity(), 8);
    }

    #[test]
    fn double_packing_rejected() {
        let mut layout = Layout::new();
        let x = layout.bit("x", false);
        let y = layout.bit("y", false);
        layout.pack(&[x]).unwrap();
        assert_eq!(layout.pack(&[x, y]), Err(LayoutError::AlreadyPacked(x)));
    }

    #[test]
    fn empty_pack_rejected() {
        let mut layout = Layout::new();
        assert_eq!(layout.pack(&[]), Err(LayoutError::EmptyWord));
    }

    #[test]
    fn unknown_register_pack_rejected() {
        let mut layout = Layout::new();
        let ghost = RegisterId::new(9);
        assert_eq!(layout.pack(&[ghost]), Err(LayoutError::UnknownRegister(ghost)));
    }

    #[test]
    fn display_mentions_every_register() {
        let mut layout = Layout::new();
        layout.register("x", 4, 1);
        let rendered = layout.to_string();
        assert!(rendered.contains("x"));
        assert!(rendered.contains("4 bit(s)"));
    }
}
