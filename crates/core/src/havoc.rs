//! Havoc semantics: the feasible results of one operation when shared
//! memory is unconstrained.
//!
//! The paper's central object is the *contention-free* (solo) execution:
//! a process running with no interference. To reason about **all** solo
//! behaviors at once — and about a process's behavior embedded in an
//! arbitrary concurrent run — the control-automaton analysis in
//! `cfc-verify` steps a process over a *havoc* memory in which every
//! read may return any value the register's layout width admits. This
//! module enumerates that result domain for one operation.
//!
//! Soundness is by construction: the concrete result any real memory
//! returns for an operation is drawn from the domain enumerated here
//! (reads are masked to the register width on every write path, bit
//! operations return bits, packed reads return per-member masked
//! values). Writes observe nothing, so they have the singleton domain
//! `[OpResult::None]`.

use crate::layout::Layout;
use crate::op::{Op, OpResult};
use crate::value::Value;

/// Result domains wider than `2^HAVOC_WIDTH_CAP` are not enumerated;
/// [`op_result_domain`] returns `None` and the caller must fall back to
/// a conservative analysis. 16 bits covers every modeled family
/// (bakery tickets are the widest at 16 bits — and bakery's reads feed
/// only order comparisons, so its location hook projects the ticket
/// values away before the domain is ever consulted).
pub const HAVOC_WIDTH_CAP: u32 = 16;

/// Enumerates every result the operation can observe under havoc
/// memory, in a fixed deterministic order (increasing raw value;
/// packed-word members vary last-member-fastest).
///
/// Returns `None` when the domain would exceed `2^`[`HAVOC_WIDTH_CAP`]
/// members — the caller must then treat the process as unanalyzable
/// (which is always sound) rather than enumerate billions of branches.
pub fn op_result_domain(op: &Op, layout: &Layout) -> Option<Vec<OpResult>> {
    match op {
        Op::Read(r) => {
            let width = layout.width(*r);
            if width > HAVOC_WIDTH_CAP {
                return None;
            }
            Some(
                (0..1u64 << width)
                    .map(|v| OpResult::Value(Value::new(v)))
                    .collect(),
            )
        }
        Op::Write(..) | Op::WriteWord(..) => Some(vec![OpResult::None]),
        Op::Bit(_, bop) => {
            if bop.returns_value() {
                // A read–modify–write bit op observes the old bit.
                Some(vec![
                    OpResult::Value(Value::ZERO),
                    OpResult::Value(Value::ONE),
                ])
            } else {
                Some(vec![OpResult::None])
            }
        }
        Op::ReadWord(w) => {
            let members = layout.word_members(*w)?;
            let total: u32 = members.iter().map(|&r| layout.width(r)).sum();
            if total > HAVOC_WIDTH_CAP {
                return None;
            }
            // The cross product of the member domains, packed as the
            // member-value vector `Memory::apply` returns.
            let mut domain = vec![Vec::new()];
            for &r in members {
                let width = layout.width(r);
                let mut next = Vec::with_capacity(domain.len() << width);
                for prefix in &domain {
                    for v in 0..1u64 << width {
                        let mut vs = prefix.clone();
                        vs.push(Value::new(v));
                        next.push(vs);
                    }
                }
                domain = next;
            }
            Some(domain.into_iter().map(OpResult::Values).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitop::BitOp;
    use crate::ids::WordId;

    #[test]
    fn read_domain_covers_the_width() {
        let mut layout = Layout::new();
        let r = layout.register("r", 2, 0);
        let domain = op_result_domain(&Op::Read(r), &layout).unwrap();
        assert_eq!(domain.len(), 4);
        assert_eq!(domain[3], OpResult::Value(Value::new(3)));
    }

    #[test]
    fn writes_observe_nothing() {
        let mut layout = Layout::new();
        let r = layout.register("r", 4, 0);
        let domain = op_result_domain(&Op::Write(r, Value::new(9)), &layout).unwrap();
        assert_eq!(domain, vec![OpResult::None]);
    }

    #[test]
    fn bit_ops_split_on_returns_value() {
        let mut layout = Layout::new();
        let b = layout.bit("b", false);
        let tas = op_result_domain(&Op::Bit(b, BitOp::TestAndSet), &layout).unwrap();
        assert_eq!(tas.len(), 2);
        let set = op_result_domain(&Op::Bit(b, BitOp::Write1), &layout).unwrap();
        assert_eq!(set, vec![OpResult::None]);
    }

    #[test]
    fn word_read_is_the_member_product() {
        let mut layout = Layout::new();
        let x = layout.register("x", 1, 0);
        let y = layout.register("y", 2, 0);
        let w = layout.pack(&[x, y]).unwrap();
        let domain = op_result_domain(&Op::ReadWord(w), &layout).unwrap();
        assert_eq!(domain.len(), 8);
        assert_eq!(
            domain[5],
            OpResult::Values(vec![Value::new(1), Value::new(1)])
        );
        assert!(op_result_domain(&Op::ReadWord(WordId::new(9)), &layout).is_none());
    }

    #[test]
    fn wide_reads_refuse_to_enumerate() {
        let mut layout = Layout::new();
        let r = layout.register("r", HAVOC_WIDTH_CAP + 1, 0);
        assert!(op_result_domain(&Op::Read(r), &layout).is_none());
    }
}
