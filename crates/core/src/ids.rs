//! Identifier newtypes for registers, processes, and packed words.

use std::fmt;

/// Identifies a shared register within a [`Layout`](crate::Layout).
///
/// Register ids are dense indices handed out by [`Layout::register`]
/// (crate::Layout::register) in declaration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegisterId(u32);

impl RegisterId {
    /// Creates a register id from a raw index.
    pub const fn new(index: u32) -> Self {
        RegisterId(index)
    }

    /// Returns the dense index of this register.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifies a process participating in a run.
///
/// The paper assumes processes are numbered `1..=n`; here they are numbered
/// `0..n` as dense indices into the executor's process vector. Algorithms
/// that need the paper's `1..=n` convention use [`ProcessId::one_based`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process id from a raw zero-based index.
    pub const fn new(index: u32) -> Self {
        ProcessId(index)
    }

    /// Returns the dense zero-based index of this process.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the paper's one-based identifier (`index + 1`).
    pub const fn one_based(self) -> u64 {
        self.0 as u64 + 1
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifies a packed word created by [`Layout::pack`](crate::Layout::pack).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WordId(u32);

impl WordId {
    /// Creates a word id from a raw index.
    pub const fn new(index: u32) -> Self {
        WordId(index)
    }

    /// Returns the dense index of this word.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_id_round_trip() {
        let r = RegisterId::new(7);
        assert_eq!(r.index(), 7);
        assert_eq!(r.to_string(), "r7");
    }

    #[test]
    fn process_id_one_based() {
        let p = ProcessId::new(0);
        assert_eq!(p.one_based(), 1);
        assert_eq!(p.to_string(), "p0");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(RegisterId::new(1) < RegisterId::new(2));
        assert!(ProcessId::new(0) < ProcessId::new(3));
        assert_eq!(WordId::new(4).index(), 4);
        assert_eq!(WordId::new(4).to_string(), "w4");
    }
}
