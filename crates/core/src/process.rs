//! The process abstraction: algorithms as explicit state machines.

use std::fmt;

use crate::footprint::RegisterSet;
use crate::op::{OpResult, Step};
use crate::value::Value;

/// The region a mutual-exclusion participant currently occupies.
///
/// The paper's complexity definitions for mutual exclusion (Section 2.2)
/// are stated in terms of these regions: complexity is measured over the
/// *entry code* and *exit code*, never the critical section or remainder.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Section {
    /// The process is not competing.
    #[default]
    Remainder,
    /// The process is executing its entry code (trying to enter).
    Entry,
    /// The process is inside its critical section.
    Critical,
    /// The process is executing its exit code (releasing).
    Exit,
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Section::Remainder => "remainder",
            Section::Entry => "entry",
            Section::Critical => "critical",
            Section::Exit => "exit",
        };
        f.write_str(s)
    }
}

/// A process of the paper's model: a (possibly infinite) state machine that
/// communicates only through shared registers.
///
/// The executor drives a process with a *peek/advance* protocol:
///
/// 1. [`Process::current`] returns the next atomic step the process wants
///    to take. It must be **pure and deterministic** — calling it any
///    number of times without an intervening `advance` must return the same
///    step and must not change observable state. (The model checker in
///    `cfc-verify` relies on this to enumerate interleavings.)
/// 2. If the step is an operation, the executor applies it to shared memory
///    and passes the result to [`Process::advance`], which moves the state
///    machine forward. For [`Step::Internal`], `advance` is called with
///    [`OpResult::None`]. For [`Step::Halt`], `advance` is never called
///    again.
///
/// One `current`/`advance` round is exactly one *event* of the paper's run
/// semantics.
pub trait Process {
    /// The next atomic step this process wishes to take.
    fn current(&self) -> Step;

    /// Advances the state machine with the result of the step returned by
    /// the last call to [`Process::current`].
    fn advance(&mut self, result: OpResult);

    /// The process's decision value, once it has halted.
    ///
    /// Contention-detection processes output `0`/`1`; naming processes
    /// output their name. Defaults to `None` for processes without outputs.
    fn output(&self) -> Option<Value> {
        None
    }

    /// The mutual-exclusion section this process currently occupies, if the
    /// process participates in a mutual-exclusion protocol.
    ///
    /// The executor records a [`Section`](crate::EventKind::Section) event
    /// whenever the reported section changes; metrics use those markers to
    /// delimit entry/exit windows. Defaults to `None` for processes without
    /// sections (naming, detection).
    fn section(&self) -> Option<Section> {
        None
    }

    /// A 64-bit fingerprint of the process's local state, used by the
    /// symmetry-reduced explorer in `cfc-verify` to canonically order
    /// interchangeable processes.
    ///
    /// The fingerprint must be a pure function of the local state, and
    /// should be injective on the states one algorithm instance can reach
    /// (collisions are sound — they only forfeit orbit merges). Defaults
    /// to `None`, in which case the explorer falls back to hashing the
    /// full state via the process's `Hash` implementation.
    fn fingerprint(&self) -> Option<u64> {
        None
    }

    /// A compact key for this process's *control location*, used by the
    /// solo-execution control-automaton analysis in `cfc-verify` to merge
    /// local states that are indistinguishable to reduction.
    ///
    /// Contract: two states of the same system that report the same
    /// `Some` location must have (a) the same current-step footprint and
    /// (b) the same set of successor locations over all operation
    /// results — except that successors looping back to the same
    /// location may differ (a self-loop adds nothing to the location's
    /// future-access set). Data that influences *which* registers are
    /// accessed must therefore be part of the location; data that only
    /// influences written values (tickets, scratch maxima) should be
    /// projected away, which is exactly what keeps the havoc execution
    /// tree finite. Defaults to `None`, in which case the analysis keys
    /// on the full state via `Eq`/`Hash` (always sound, finite only for
    /// processes that retain no wide data).
    fn location(&self) -> Option<u64> {
        None
    }

    /// Writes an over-approximation of every shared location this process
    /// may access in the current step **or any future step** (under any
    /// operation results) into `out`, returning `true`; returns `false`
    /// when no such bound is known (the default), which partial-order
    /// reduction treats as "may access everything".
    ///
    /// Contract: the set must be *monotone* — advancing the process never
    /// grows it — and must cover the current step's footprint. Callers
    /// pass `out` pre-cleared.
    fn may_access(&self, _out: &mut RegisterSet) -> bool {
        false
    }

    /// Packs every varying part of this process's local state into `w`,
    /// returning `true`; returns `false` when the process does not
    /// support bit-packing (the default), in which case the packed state
    /// store in `cfc-verify` falls back to interning opaque clones.
    ///
    /// Contract (checked by the store's probe and round-trip property
    /// tests): the bit count written is **fixed** — the same for every
    /// reachable state of every process of the system, independent of
    /// the state's value — and [`Process::unpack_state`] applied to a
    /// clone of *any* process of the system restores a state equal
    /// (`Eq`) to the packed one. Anything not written must therefore be
    /// identical across all processes and constant over time (shared
    /// register handles, configuration); per-process identity must be
    /// packed.
    fn pack_state(&self, _w: &mut crate::codec::StateWriter) -> bool {
        false
    }

    /// Restores a state previously packed by [`Process::pack_state`]
    /// onto `self` (a clone of any process of the same system),
    /// returning `true`; must return `false` (reading nothing) exactly
    /// when `pack_state` does.
    fn unpack_state(&mut self, _r: &mut crate::codec::StateReader<'_>) -> bool {
        false
    }
}

impl<P: Process + ?Sized> Process for Box<P> {
    fn current(&self) -> Step {
        (**self).current()
    }

    fn advance(&mut self, result: OpResult) {
        (**self).advance(result)
    }

    fn output(&self) -> Option<Value> {
        (**self).output()
    }

    fn section(&self) -> Option<Section> {
        (**self).section()
    }

    fn fingerprint(&self) -> Option<u64> {
        (**self).fingerprint()
    }

    fn location(&self) -> Option<u64> {
        (**self).location()
    }

    fn may_access(&self, out: &mut RegisterSet) -> bool {
        (**self).may_access(out)
    }

    fn pack_state(&self, w: &mut crate::codec::StateWriter) -> bool {
        (**self).pack_state(w)
    }

    fn unpack_state(&mut self, r: &mut crate::codec::StateReader<'_>) -> bool {
        (**self).unpack_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Step;

    #[derive(Clone)]
    struct Halter;

    impl Process for Halter {
        fn current(&self) -> Step {
            Step::Halt
        }
        fn advance(&mut self, _: OpResult) {
            unreachable!("halted process is never advanced")
        }
    }

    #[test]
    fn default_accessors_are_none() {
        let p = Halter;
        assert!(p.output().is_none());
        assert!(p.section().is_none());
    }

    #[test]
    fn boxed_process_delegates() {
        let p: Box<dyn Process> = Box::new(Halter);
        assert_eq!(p.current(), Step::Halt);
        assert!(p.output().is_none());
    }

    #[test]
    fn section_display() {
        assert_eq!(Section::Entry.to_string(), "entry");
        assert_eq!(Section::Critical.to_string(), "critical");
        assert_eq!(Section::default(), Section::Remainder);
    }
}
