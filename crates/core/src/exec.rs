//! The interleaving executor: produces runs of a system of processes.

use std::fmt;

use crate::error::ExecError;
use crate::fault::FaultPlan;
use crate::ids::ProcessId;
use crate::memory::Memory;
use crate::op::{OpResult, Step};
use crate::process::{Process, Section};
use crate::sched::{Scheduler, Sequential, Solo};
use crate::trace::{Event, EventKind, Trace};
use crate::value::Value;

/// Execution limits and options.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// The maximum number of events before the run is aborted with
    /// [`ExecError::Budget`]. Guards against livelocks — which genuinely
    /// exist in mutual-exclusion runs under unfair schedules.
    pub max_events: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_events: 1_000_000,
        }
    }
}

/// The liveness status of a process within an execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Status {
    /// Still taking steps.
    Running,
    /// Halted voluntarily ([`Step::Halt`]).
    Done,
    /// Suffered a stopping failure (crash).
    Crashed,
}

impl Status {
    /// Whether the process is still enabled — it can (and, under weak
    /// fairness, eventually must) take another step. In this model every
    /// running process always has an enabled step (waiting is modeled as
    /// busy-wait reads), so *enabled* and *running* coincide; `Done` and
    /// `Crashed` are absorbing. The fair-cycle liveness checker in
    /// `cfc-verify` builds its weak-fairness obligation from exactly this
    /// predicate: along an infinite run, every process that is
    /// `runnable` from some point on must take infinitely many steps.
    pub fn runnable(self) -> bool {
        self == Status::Running
    }
}

/// Summary of a finished (or stopped) run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Every process is `Done` or `Crashed`.
    pub quiescent: bool,
    /// Number of events executed (excluding annotations).
    pub events: u64,
}

/// Drives a set of processes over a shared [`Memory`] under a
/// [`Scheduler`], recording a [`Trace`].
///
/// An `Executor` owns the system state. It can run to quiescence
/// ([`Executor::run`]) or be single-stepped ([`Executor::step_process`])
/// for fine-grained control (the model checker and the merge attack use
/// single-stepping).
pub struct Executor<P> {
    memory: Memory,
    procs: Vec<P>,
    status: Vec<Status>,
    steps_taken: Vec<u64>,
    last_section: Vec<Option<Section>>,
    trace: Trace,
    faults: FaultPlan,
    config: ExecConfig,
    events: u64,
}

impl<P: fmt::Debug> fmt::Debug for Executor<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("memory", &self.memory)
            .field("status", &self.status)
            .field("events", &self.events)
            .finish_non_exhaustive()
    }
}

impl<P: Process> Executor<P> {
    /// Creates an executor over `procs` sharing `memory`.
    pub fn new(memory: Memory, procs: Vec<P>) -> Self {
        let n = procs.len();
        let mut exec = Executor {
            memory,
            procs,
            status: vec![Status::Running; n],
            steps_taken: vec![0; n],
            last_section: vec![None; n],
            trace: Trace::new(),
            faults: FaultPlan::new(),
            config: ExecConfig::default(),
            events: 0,
        };
        // Record each process's initial section so metrics can attribute
        // the very first accesses correctly.
        for i in 0..n {
            let pid = ProcessId::new(i as u32);
            exec.note_section(pid);
        }
        exec
    }

    /// Sets the fault plan (crash injection).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets execution limits.
    pub fn with_config(mut self, config: ExecConfig) -> Self {
        self.config = config;
        self
    }

    /// The number of processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Returns `true` if the executor has no processes.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// The shared memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the executor, returning the trace and final memory.
    pub fn into_parts(self) -> (Trace, Memory, Vec<P>) {
        (self.trace, self.memory, self.procs)
    }

    /// The status of a process.
    pub fn status(&self, pid: ProcessId) -> Status {
        self.status[pid.index()]
    }

    /// A shared reference to a process.
    pub fn process(&self, pid: ProcessId) -> &P {
        &self.procs[pid.index()]
    }

    /// The number of steps (events) a process has taken.
    pub fn steps_taken(&self, pid: ProcessId) -> u64 {
        self.steps_taken[pid.index()]
    }

    /// The outputs of all processes (index = process id).
    pub fn outputs(&self) -> Vec<Option<Value>> {
        self.procs.iter().map(Process::output).collect()
    }

    /// The ids of processes still running, in id order.
    pub fn runnable(&self) -> Vec<ProcessId> {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Running)
            .map(|(i, _)| ProcessId::new(i as u32))
            .collect()
    }

    /// Returns `true` when every process is done or crashed.
    pub fn quiescent(&self) -> bool {
        self.status.iter().all(|s| *s != Status::Running)
    }

    /// Executes one event of process `pid`.
    ///
    /// Applies the crash plan first: if `pid` is due to crash it is crashed
    /// instead of stepping. A `Halt` step marks the process done.
    ///
    /// # Errors
    ///
    /// Returns an error if `pid` is not runnable, if the event budget is
    /// exhausted, or if the process issues an invalid memory operation.
    pub fn step_process(&mut self, pid: ProcessId) -> Result<(), ExecError> {
        let i = pid.index();
        if self.status.get(i) != Some(&Status::Running) {
            return Err(ExecError::NotRunnable(pid));
        }
        if self.events >= self.config.max_events {
            return Err(ExecError::Budget {
                events: self.events,
            });
        }
        if self.faults.should_crash(pid, self.steps_taken[i]) {
            self.status[i] = Status::Crashed;
            self.trace.push(Event {
                pid,
                kind: EventKind::Crash,
            });
            return Ok(());
        }
        match self.procs[i].current() {
            Step::Halt => {
                self.status[i] = Status::Done;
                self.trace.push(Event {
                    pid,
                    kind: EventKind::Done {
                        output: self.procs[i].output(),
                    },
                });
            }
            Step::Internal => {
                self.events += 1;
                self.steps_taken[i] += 1;
                self.procs[i].advance(OpResult::None);
                self.trace.push(Event {
                    pid,
                    kind: EventKind::Internal,
                });
                self.note_section(pid);
            }
            Step::Op(op) => {
                self.events += 1;
                self.steps_taken[i] += 1;
                let result = self.memory.apply(&op)?;
                self.procs[i].advance(result.clone());
                self.trace.push(Event {
                    pid,
                    kind: EventKind::Access { op, result },
                });
                self.note_section(pid);
            }
        }
        Ok(())
    }

    /// Runs under `sched` until quiescence, the scheduler stops, or the
    /// budget is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Budget`] if the event budget runs out, or any
    /// error from an invalid memory operation.
    pub fn run<S: Scheduler>(&mut self, mut sched: S) -> Result<Outcome, ExecError> {
        loop {
            let runnable = self.runnable();
            if runnable.is_empty() {
                return Ok(Outcome {
                    quiescent: true,
                    events: self.events,
                });
            }
            let Some(pid) = sched.pick(&runnable) else {
                return Ok(Outcome {
                    quiescent: false,
                    events: self.events,
                });
            };
            self.step_process(pid)?;
        }
    }

    fn note_section(&mut self, pid: ProcessId) {
        let current = self.procs[pid.index()].section();
        if current != self.last_section[pid.index()] {
            self.last_section[pid.index()] = current;
            if let Some(section) = current {
                self.trace.push(Event {
                    pid,
                    kind: EventKind::Section(section),
                });
            }
        }
    }
}

/// Runs a single process to completion on a fresh copy of `memory`.
///
/// This is the paper's contention-free run: the process executes with every
/// other process in its remainder region. Returns the trace, the finished
/// process, and the final memory.
///
/// # Errors
///
/// Propagates executor errors (budget exhaustion, invalid operations).
pub fn run_solo<P: Process>(memory: Memory, proc_: P) -> Result<(Trace, P, Memory), ExecError> {
    let mut exec = Executor::new(memory, vec![proc_]);
    exec.run(Solo(ProcessId::new(0)))?;
    let (trace, memory, mut procs) = exec.into_parts();
    Ok((trace, procs.pop().expect("one process"), memory))
}

/// Runs every process to completion, one after another, in id order.
///
/// This produces the sequential contention-free runs used by the naming
/// lower bounds (Theorems 5 and 7): when a process executes, every other
/// process has either terminated or not started.
///
/// # Errors
///
/// Propagates executor errors.
pub fn run_sequential<P: Process>(
    memory: Memory,
    procs: Vec<P>,
) -> Result<(Trace, Memory, Vec<P>), ExecError> {
    let mut exec = Executor::new(memory, procs);
    exec.run(Sequential)?;
    let (trace, memory, procs) = exec.into_parts();
    Ok((trace, memory, procs))
}

/// Runs processes under an arbitrary scheduler with optional faults,
/// returning the executor for inspection.
///
/// # Errors
///
/// Propagates executor errors.
pub fn run_schedule<P: Process, S: Scheduler>(
    memory: Memory,
    procs: Vec<P>,
    sched: S,
    faults: FaultPlan,
    config: ExecConfig,
) -> Result<Executor<P>, ExecError> {
    let mut exec = Executor::new(memory, procs)
        .with_faults(faults)
        .with_config(config);
    exec.run(sched)?;
    Ok(exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use crate::op::Op;
    use crate::sched::RoundRobin;
    use crate::RegisterId;

    /// Increments a counter register `rounds` times, then halts with the
    /// final observed value as output.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Incrementer {
        reg: RegisterId,
        rounds: u32,
        pc: u8, // 0 = read, 1 = write, 2 = halt
        seen: u64,
    }

    impl Incrementer {
        fn new(reg: RegisterId, rounds: u32) -> Self {
            Incrementer {
                reg,
                rounds,
                pc: 0,
                seen: 0,
            }
        }
    }

    impl Process for Incrementer {
        fn current(&self) -> Step {
            match self.pc {
                0 => Step::Op(Op::Read(self.reg)),
                1 => Step::Op(Op::Write(self.reg, Value::new(self.seen + 1))),
                _ => Step::Halt,
            }
        }

        fn advance(&mut self, result: OpResult) {
            match self.pc {
                0 => {
                    self.seen = result.value().raw();
                    self.pc = 1;
                }
                1 => {
                    self.rounds -= 1;
                    self.pc = if self.rounds == 0 { 2 } else { 0 };
                }
                _ => unreachable!(),
            }
        }

        fn output(&self) -> Option<Value> {
            (self.pc == 2).then_some(Value::new(self.seen + 1))
        }
    }

    fn counter_memory() -> (Memory, RegisterId) {
        let mut layout = Layout::new();
        let c = layout.register("count", 16, 0);
        (Memory::new(layout, 16).unwrap(), c)
    }

    #[test]
    fn solo_run_completes_and_counts() {
        let (memory, c) = counter_memory();
        let (trace, proc_, memory) = run_solo(memory, Incrementer::new(c, 3)).unwrap();
        assert_eq!(memory.get(c), Value::new(3));
        assert_eq!(proc_.output(), Some(Value::new(3)));
        assert_eq!(trace.access_count(), 6);
        assert_eq!(trace.output_of(ProcessId::new(0)), Some(Value::new(3)));
    }

    #[test]
    fn sequential_runs_do_not_interleave() {
        let (memory, c) = counter_memory();
        let procs = vec![Incrementer::new(c, 2), Incrementer::new(c, 2)];
        let (_, memory, procs) = run_sequential(memory, procs).unwrap();
        // No lost updates in sequential composition.
        assert_eq!(memory.get(c), Value::new(4));
        assert_eq!(procs[0].output(), Some(Value::new(2)));
        assert_eq!(procs[1].output(), Some(Value::new(4)));
    }

    #[test]
    fn round_robin_interleaving_loses_updates() {
        // The classic read/write race: both read 0, both write 1.
        let (memory, c) = counter_memory();
        let procs = vec![Incrementer::new(c, 1), Incrementer::new(c, 1)];
        let mut exec = Executor::new(memory, procs);
        exec.run(RoundRobin::new()).unwrap();
        assert!(exec.quiescent());
        assert_eq!(exec.memory().get(c), Value::new(1)); // lost update!
    }

    #[test]
    fn budget_guards_against_runaway_runs() {
        let (memory, c) = counter_memory();
        let procs = vec![Incrementer::new(c, 1_000)];
        let mut exec =
            Executor::new(memory, procs).with_config(ExecConfig { max_events: 10 });
        let err = exec.run(RoundRobin::new()).unwrap_err();
        assert_eq!(err, ExecError::Budget { events: 10 });
    }

    #[test]
    fn crash_plan_silences_process() {
        let (memory, c) = counter_memory();
        let procs = vec![Incrementer::new(c, 5), Incrementer::new(c, 1)];
        let faults = FaultPlan::new().with_crash(ProcessId::new(0), 2);
        let mut exec = Executor::new(memory, procs).with_faults(faults);
        exec.run(RoundRobin::new()).unwrap();
        assert_eq!(exec.status(ProcessId::new(0)), Status::Crashed);
        assert_eq!(exec.status(ProcessId::new(1)), Status::Done);
        assert_eq!(exec.steps_taken(ProcessId::new(0)), 2);
        // The crash is visible in the trace.
        assert!(exec
            .trace()
            .iter()
            .any(|e| matches!(e.kind, EventKind::Crash)));
    }

    #[test]
    fn scheduler_stop_reports_non_quiescent() {
        let (memory, c) = counter_memory();
        let procs = vec![Incrementer::new(c, 5)];
        let mut exec = Executor::new(memory, procs);
        let outcome = exec.run(Solo(ProcessId::new(1))).unwrap(); // wrong pid: stops at once
        assert!(!outcome.quiescent);
        assert_eq!(outcome.events, 0);
    }

    #[test]
    fn not_runnable_is_an_error() {
        let (memory, c) = counter_memory();
        let mut exec = Executor::new(memory, vec![Incrementer::new(c, 1)]);
        assert!(exec.step_process(ProcessId::new(3)).is_err());
    }

    #[test]
    fn done_event_carries_output() {
        let (memory, c) = counter_memory();
        let (trace, _, _) = run_solo(memory, Incrementer::new(c, 1)).unwrap();
        let done = trace
            .iter()
            .find(|e| matches!(e.kind, EventKind::Done { .. }))
            .unwrap();
        assert_eq!(
            done.kind,
            EventKind::Done {
                output: Some(Value::new(1))
            }
        );
    }
}
