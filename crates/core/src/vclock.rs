//! Vector clocks: per-process logical time and the join-semilattice it
//! forms, used to compute the **per-trace happens-before relation**.
//!
//! A [`VectorClock`] maps each process to the number of its events that
//! causally precede a point of a trace. The componentwise maximum
//! ([`VectorClock::join`]) is the semilattice join, and the
//! componentwise order ([`VectorClock::leq`]) is exactly the
//! happens-before partial order when clocks are maintained the standard
//! way: tick your own component on every event, join with the clock of
//! every conflicting earlier event. Two events with incomparable clocks
//! are concurrent — neither can observe the other.
//!
//! The verifier (`cfc-verify::dynamic`) uses these clocks to audit its
//! observed-conflict tracking: dynamic partial-order reduction sleeps a
//! process only when its next step is concurrent (footprint-independent)
//! with the step taken, and the clock laws tested in
//! `tests/prop_dynamic.rs` pin down what "concurrent" must mean.
//!
//! Trailing zero components are insignificant: `[1, 0]` and `[1]`
//! denote the same clock, and equality, ordering, and hashing all agree
//! on that (the representation is normalized on construction).

use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

use crate::ids::ProcessId;

/// A vector of per-process logical times, partially ordered
/// componentwise, with join = componentwise maximum.
#[derive(Clone, Debug, Default)]
pub struct VectorClock {
    /// Component `i` counts events of process `i` in the causal past.
    /// Invariant: no trailing zeros (enforced by every mutator), so
    /// derived-looking equality and hashing stay representation-free.
    components: Vec<u64>,
}

impl VectorClock {
    /// The zero clock (bottom of the semilattice).
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// The logical time of `pid` (0 when the process has no events in
    /// the causal past).
    pub fn get(&self, pid: ProcessId) -> u64 {
        self.components.get(pid.index()).copied().unwrap_or(0)
    }

    /// The number of processes with a nonzero component.
    pub fn len(&self) -> usize {
        self.components.iter().filter(|c| **c != 0).count()
    }

    /// Is this the zero clock?
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Advances `pid`'s own component by one — the stepping process
    /// observing its own event.
    pub fn tick(&mut self, pid: ProcessId) {
        let i = pid.index();
        if i >= self.components.len() {
            self.components.resize(i + 1, 0);
        }
        self.components[i] += 1;
    }

    /// Joins `other` into `self`: componentwise maximum, the semilattice
    /// join. After `a.join(&b)`, both `b.leq(&a)` and the old `a`'s
    /// order into the new one hold.
    pub fn join(&mut self, other: &VectorClock) {
        if other.components.len() > self.components.len() {
            self.components.resize(other.components.len(), 0);
        }
        for (a, b) in self.components.iter_mut().zip(&other.components) {
            *a = (*a).max(*b);
        }
        self.normalize();
    }

    /// The join of two clocks as a new value.
    #[must_use]
    pub fn joined(&self, other: &VectorClock) -> VectorClock {
        let mut out = self.clone();
        out.join(other);
        out
    }

    /// The componentwise order: does every component of `self` bound the
    /// matching component of `other` from below? This is happens-before
    /// (or equality) when the clocks are maintained the standard way.
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.components
            .iter()
            .enumerate()
            .all(|(i, c)| *c <= other.components.get(i).copied().unwrap_or(0))
    }

    /// Are the clocks incomparable — neither `leq` the other? Events
    /// with concurrent clocks are causally unordered.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }

    fn normalize(&mut self) {
        while self.components.last() == Some(&0) {
            self.components.pop();
        }
    }
}

impl PartialEq for VectorClock {
    fn eq(&self, other: &Self) -> bool {
        // Both representations are normalized, so Vec equality is
        // clock equality.
        self.components == other.components
    }
}

impl Eq for VectorClock {}

impl Hash for VectorClock {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.components.hash(state);
    }
}

impl PartialOrd for VectorClock {
    /// The happens-before partial order; `None` for concurrent clocks.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self.leq(other), other.leq(self)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn clock(ticks: &[(u32, u64)]) -> VectorClock {
        let mut c = VectorClock::new();
        for &(p, n) in ticks {
            for _ in 0..n {
                c.tick(pid(p));
            }
        }
        c
    }

    #[test]
    fn tick_is_monotone_and_local() {
        let mut c = VectorClock::new();
        assert!(c.is_empty());
        c.tick(pid(2));
        assert_eq!(c.get(pid(2)), 1);
        assert_eq!(c.get(pid(0)), 0);
        let before = c.clone();
        c.tick(pid(2));
        assert!(before.leq(&c) && before != c);
    }

    #[test]
    fn join_is_componentwise_max() {
        let a = clock(&[(0, 2), (1, 1)]);
        let b = clock(&[(1, 3), (4, 1)]);
        let j = a.joined(&b);
        assert_eq!(j.get(pid(0)), 2);
        assert_eq!(j.get(pid(1)), 3);
        assert_eq!(j.get(pid(4)), 1);
        assert!(a.leq(&j) && b.leq(&j));
    }

    #[test]
    fn join_laws() {
        let a = clock(&[(0, 1)]);
        let b = clock(&[(1, 2)]);
        let c = clock(&[(0, 3), (2, 1)]);
        assert_eq!(a.joined(&b), b.joined(&a), "commutative");
        assert_eq!(
            a.joined(&b).joined(&c),
            a.joined(&b.joined(&c)),
            "associative"
        );
        assert_eq!(a.joined(&a), a, "idempotent");
        assert_eq!(a.joined(&VectorClock::new()), a, "zero is the unit");
    }

    #[test]
    fn trailing_zeros_are_insignificant() {
        // `tick` beyond the current length then observing a shorter
        // clock must not distinguish [1] from a padded representation.
        let a = clock(&[(0, 1)]);
        let mut b = clock(&[(0, 1), (3, 1)]);
        assert_ne!(a, b);
        // Join with a clock that dominates component 3 only, then
        // compare against the same join built the other way round.
        let dom = clock(&[(3, 1)]);
        b.join(&dom);
        assert_eq!(b, a.joined(&dom));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn partial_order_classifies_concurrency() {
        let a = clock(&[(0, 2)]);
        let b = clock(&[(1, 1)]);
        assert!(a.concurrent_with(&b));
        assert_eq!(a.partial_cmp(&b), None);
        let ab = a.joined(&b);
        assert_eq!(a.partial_cmp(&ab), Some(Ordering::Less));
        assert_eq!(ab.partial_cmp(&b), Some(Ordering::Greater));
        assert_eq!(a.partial_cmp(&a.clone()), Some(Ordering::Equal));
        assert!(!a.concurrent_with(&a));
    }
}
