//! The four complexity measures of the paper, computed from traces.
//!
//! *Step complexity* counts accesses to shared registers; *register
//! complexity* counts **distinct** shared registers accessed (a lower bound
//! on remote accesses under coherent caching, Section 1.2). Both come in
//! *worst-case* and *contention-free* flavors: the former maximizes over
//! all runs, the latter over runs in which the measured process executes
//! without interference.
//!
//! This module computes the measures for a *given* trace; the
//! contention-free/worst-case distinction is realized by how the trace was
//! produced (solo/sequential runs vs. adversarial or explored schedules —
//! see [`run_solo`](crate::run_solo), [`run_sequential`](crate::run_sequential)
//! and `cfc-verify`).

use std::collections::BTreeSet;
use std::fmt;

use crate::ids::{ProcessId, RegisterId};
use crate::layout::Layout;
use crate::op::AccessClass;
use crate::process::Section;
use crate::trace::{Event, EventKind, Trace};

/// The access-count profile of one process over some window of a run.
///
/// `steps = read_steps + write_steps + rmw_steps`; the paper's *read-step
/// complexity* is `read_steps + rmw_steps` and *write-step complexity* is
/// `write_steps + rmw_steps` (a read–modify–write both reads and writes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Complexity {
    /// Total accesses to shared registers (step complexity).
    pub steps: u64,
    /// Accesses that only read.
    pub read_steps: u64,
    /// Accesses that only write.
    pub write_steps: u64,
    /// Accesses that atomically read and write (bit RMW operations).
    pub rmw_steps: u64,
    /// Distinct registers accessed (register complexity).
    pub registers: u64,
    /// Distinct registers read (including RMW accesses).
    pub read_registers: u64,
    /// Distinct registers written (including RMW accesses).
    pub write_registers: u64,
    /// Total shared *bits* accessed: each access to an `w`-bit register
    /// counts `w` (the corollary to Theorem 1 is stated in these units).
    pub bit_accesses: u64,
}

impl Complexity {
    /// The paper's read-step complexity: steps that observe memory.
    pub fn read_step_complexity(&self) -> u64 {
        self.read_steps + self.rmw_steps
    }

    /// The paper's write-step complexity: steps that mutate memory.
    pub fn write_step_complexity(&self) -> u64 {
        self.write_steps + self.rmw_steps
    }

    /// Field-wise maximum, used to aggregate worst cases across runs.
    pub fn max_fields(self, other: Complexity) -> Complexity {
        Complexity {
            steps: self.steps.max(other.steps),
            read_steps: self.read_steps.max(other.read_steps),
            write_steps: self.write_steps.max(other.write_steps),
            rmw_steps: self.rmw_steps.max(other.rmw_steps),
            registers: self.registers.max(other.registers),
            read_registers: self.read_registers.max(other.read_registers),
            write_registers: self.write_registers.max(other.write_registers),
            bit_accesses: self.bit_accesses.max(other.bit_accesses),
        }
    }
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "steps={} (r={}, w={}, rmw={}), registers={} (r={}, w={}), bits={}",
            self.steps,
            self.read_steps,
            self.write_steps,
            self.rmw_steps,
            self.registers,
            self.read_registers,
            self.write_registers,
            self.bit_accesses
        )
    }
}

/// Incremental accumulator for a [`Complexity`] profile.
#[derive(Clone, Debug, Default)]
pub struct ComplexityAccumulator {
    counts: Complexity,
    touched: BTreeSet<RegisterId>,
    read: BTreeSet<RegisterId>,
    written: BTreeSet<RegisterId>,
}

impl ComplexityAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access event.
    pub fn record(&mut self, layout: &Layout, event: &Event) {
        if let EventKind::Access { op, .. } = &event.kind {
            let class = op.class();
            self.counts.steps += 1;
            match class {
                AccessClass::Read => self.counts.read_steps += 1,
                AccessClass::Write => self.counts.write_steps += 1,
                AccessClass::ReadWrite => self.counts.rmw_steps += 1,
            }
            self.counts.bit_accesses += op.bit_width(layout);
            for r in op.registers(layout) {
                self.touched.insert(r);
                if class.reads() {
                    self.read.insert(r);
                }
                if class.writes() {
                    self.written.insert(r);
                }
            }
        }
    }

    /// The distinct registers accessed so far, in id order.
    pub fn registers(&self) -> impl Iterator<Item = RegisterId> + '_ {
        self.touched.iter().copied()
    }

    /// Finalizes the profile.
    pub fn finish(&self) -> Complexity {
        Complexity {
            registers: self.touched.len() as u64,
            read_registers: self.read.len() as u64,
            write_registers: self.written.len() as u64,
            ..self.counts
        }
    }
}

/// The complexity of one process over an entire trace.
pub fn process_complexity(trace: &Trace, layout: &Layout, pid: ProcessId) -> Complexity {
    let mut acc = ComplexityAccumulator::new();
    for e in trace.iter().filter(|e| e.pid == pid) {
        acc.record(layout, e);
    }
    acc.finish()
}

/// The complexity of every process over an entire trace.
pub fn all_process_complexities(trace: &Trace, layout: &Layout, n: usize) -> Vec<Complexity> {
    let mut accs: Vec<ComplexityAccumulator> =
        (0..n).map(|_| ComplexityAccumulator::new()).collect();
    for e in trace.iter() {
        if let Some(acc) = accs.get_mut(e.pid.index()) {
            acc.record(layout, e);
        }
    }
    accs.iter().map(ComplexityAccumulator::finish).collect()
}

/// The complexity of one mutual-exclusion *trip* (entry code + exit code).
///
/// Per Section 2.2, the step (register) complexity of a mutual-exclusion
/// algorithm sums the entry-code and exit-code contributions; critical
/// section and remainder events are excluded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TripComplexity {
    /// Accesses made while in the entry section.
    pub entry: Complexity,
    /// Accesses made while in the exit section.
    pub exit: Complexity,
    /// Combined entry + exit profile, with register sets unioned (a
    /// register accessed in both entry and exit counts once).
    pub total: Complexity,
}

/// Splits a process's run into trips and measures each (entry + exit).
///
/// Section annotations recorded by the executor delimit the windows: a trip
/// starts when the process's section becomes [`Section::Entry`] and ends
/// when it leaves [`Section::Exit`]. Incomplete final trips (process still
/// competing when the trace ends) are not reported.
pub fn trip_complexities(trace: &Trace, layout: &Layout, pid: ProcessId) -> Vec<TripComplexity> {
    let mut trips = Vec::new();
    let mut section = Section::Remainder;
    let mut entry_acc = ComplexityAccumulator::new();
    let mut exit_acc = ComplexityAccumulator::new();
    let mut total_acc = ComplexityAccumulator::new();
    let mut in_trip = false;

    for e in trace.iter().filter(|e| e.pid == pid) {
        match &e.kind {
            EventKind::Section(s) => {
                let left_exit = section == Section::Exit && *s != Section::Exit;
                section = *s;
                if left_exit && in_trip {
                    trips.push(TripComplexity {
                        entry: entry_acc.finish(),
                        exit: exit_acc.finish(),
                        total: total_acc.finish(),
                    });
                    entry_acc = ComplexityAccumulator::new();
                    exit_acc = ComplexityAccumulator::new();
                    total_acc = ComplexityAccumulator::new();
                    in_trip = false;
                }
                if section == Section::Entry {
                    in_trip = true;
                }
            }
            EventKind::Access { .. } => match section {
                Section::Entry => {
                    entry_acc.record(layout, e);
                    total_acc.record(layout, e);
                }
                Section::Exit => {
                    exit_acc.record(layout, e);
                    total_acc.record(layout, e);
                }
                Section::Critical | Section::Remainder => {}
            },
            _ => {}
        }
    }
    trips
}

/// The worst (field-wise maximum) trip complexity of a process, if it
/// completed at least one trip.
pub fn worst_trip(trace: &Trace, layout: &Layout, pid: ProcessId) -> Option<TripComplexity> {
    trip_complexities(trace, layout, pid)
        .into_iter()
        .reduce(|a, b| TripComplexity {
            entry: a.entry.max_fields(b.entry),
            exit: a.exit.max_fields(b.exit),
            total: a.total.max_fields(b.total),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitop::BitOp;
    use crate::op::{Op, OpResult};
    use crate::value::Value;

    fn layout3() -> Layout {
        let mut layout = Layout::new();
        layout.register("x", 4, 0);
        layout.register("y", 4, 0);
        layout.bit("b", false);
        layout
    }

    fn ev(pid: u32, op: Op) -> Event {
        Event {
            pid: ProcessId::new(pid),
            kind: EventKind::Access {
                op,
                result: OpResult::None,
            },
        }
    }

    fn sec(pid: u32, s: Section) -> Event {
        Event {
            pid: ProcessId::new(pid),
            kind: EventKind::Section(s),
        }
    }

    #[test]
    fn counts_steps_and_registers() {
        let layout = layout3();
        let x = RegisterId::new(0);
        let y = RegisterId::new(1);
        let b = RegisterId::new(2);
        let mut t = Trace::new();
        t.push(ev(0, Op::Read(x)));
        t.push(ev(0, Op::Read(x)));
        t.push(ev(0, Op::Write(y, Value::ONE)));
        t.push(ev(0, Op::Bit(b, BitOp::TestAndSet)));
        t.push(ev(1, Op::Read(y))); // other process, ignored

        let c = process_complexity(&t, &layout, ProcessId::new(0));
        assert_eq!(c.steps, 4);
        assert_eq!(c.read_steps, 2);
        assert_eq!(c.write_steps, 1);
        assert_eq!(c.rmw_steps, 1);
        assert_eq!(c.registers, 3);
        assert_eq!(c.read_registers, 2); // x (reads) + b (rmw)
        assert_eq!(c.write_registers, 2); // y (write) + b (rmw)
        assert_eq!(c.read_step_complexity(), 3);
        assert_eq!(c.write_step_complexity(), 2);
        assert_eq!(c.bit_accesses, 4 + 4 + 4 + 1);
    }

    #[test]
    fn register_complexity_counts_distinct() {
        let layout = layout3();
        let x = RegisterId::new(0);
        let mut t = Trace::new();
        for _ in 0..10 {
            t.push(ev(0, Op::Read(x)));
        }
        let c = process_complexity(&t, &layout, ProcessId::new(0));
        assert_eq!(c.steps, 10);
        assert_eq!(c.registers, 1);
    }

    #[test]
    fn trip_windows_exclude_critical_section() {
        let layout = layout3();
        let x = RegisterId::new(0);
        let y = RegisterId::new(1);
        let mut t = Trace::new();
        t.push(sec(0, Section::Entry));
        t.push(ev(0, Op::Read(x)));
        t.push(ev(0, Op::Write(x, Value::ONE)));
        t.push(sec(0, Section::Critical));
        t.push(ev(0, Op::Read(y))); // CS access: excluded
        t.push(sec(0, Section::Exit));
        t.push(ev(0, Op::Write(x, Value::ZERO)));
        t.push(sec(0, Section::Remainder));

        let trips = trip_complexities(&t, &layout, ProcessId::new(0));
        assert_eq!(trips.len(), 1);
        let trip = trips[0];
        assert_eq!(trip.entry.steps, 2);
        assert_eq!(trip.exit.steps, 1);
        assert_eq!(trip.total.steps, 3);
        // x touched in both entry and exit counts once in the union.
        assert_eq!(trip.total.registers, 1);
    }

    #[test]
    fn multiple_trips_are_split() {
        let layout = layout3();
        let x = RegisterId::new(0);
        let mut t = Trace::new();
        for _ in 0..2 {
            t.push(sec(0, Section::Entry));
            t.push(ev(0, Op::Read(x)));
            t.push(sec(0, Section::Critical));
            t.push(sec(0, Section::Exit));
            t.push(ev(0, Op::Write(x, Value::ZERO)));
            t.push(sec(0, Section::Remainder));
        }
        let trips = trip_complexities(&t, &layout, ProcessId::new(0));
        assert_eq!(trips.len(), 2);
        assert!(trips.iter().all(|tr| tr.total.steps == 2));
        let worst = worst_trip(&t, &layout, ProcessId::new(0)).unwrap();
        assert_eq!(worst.total.steps, 2);
    }

    #[test]
    fn exit_to_entry_transition_closes_trip() {
        // Back-to-back trips without an intervening remainder section.
        let layout = layout3();
        let x = RegisterId::new(0);
        let mut t = Trace::new();
        t.push(sec(0, Section::Entry));
        t.push(ev(0, Op::Read(x)));
        t.push(sec(0, Section::Exit));
        t.push(sec(0, Section::Entry)); // second trip begins immediately
        t.push(ev(0, Op::Read(x)));
        t.push(sec(0, Section::Exit));
        t.push(sec(0, Section::Remainder));
        let trips = trip_complexities(&t, &layout, ProcessId::new(0));
        assert_eq!(trips.len(), 2);
    }

    #[test]
    fn incomplete_trip_not_reported() {
        let layout = layout3();
        let x = RegisterId::new(0);
        let mut t = Trace::new();
        t.push(sec(0, Section::Entry));
        t.push(ev(0, Op::Read(x)));
        let trips = trip_complexities(&t, &layout, ProcessId::new(0));
        assert!(trips.is_empty());
    }

    #[test]
    fn max_fields_is_fieldwise() {
        let a = Complexity {
            steps: 5,
            registers: 1,
            ..Default::default()
        };
        let b = Complexity {
            steps: 3,
            registers: 4,
            ..Default::default()
        };
        let m = a.max_fields(b);
        assert_eq!(m.steps, 5);
        assert_eq!(m.registers, 4);
    }

    #[test]
    fn all_process_complexities_indexes_by_pid() {
        let layout = layout3();
        let x = RegisterId::new(0);
        let mut t = Trace::new();
        t.push(ev(0, Op::Read(x)));
        t.push(ev(1, Op::Read(x)));
        t.push(ev(1, Op::Read(x)));
        let all = all_process_complexities(&t, &layout, 2);
        assert_eq!(all[0].steps, 1);
        assert_eq!(all[1].steps, 2);
    }
}
