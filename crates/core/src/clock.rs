//! Monotonic clock abstraction for telemetry and timing.
//!
//! The verification drivers attribute wall-clock time to phase spans
//! and progress snapshots. They read time through the [`Clock`] trait
//! rather than [`std::time::Instant`] directly, so tests can inject a
//! [`ManualClock`] and assert on *exact* timestamps: a differential
//! suite can demand that the final telemetry snapshot equals the
//! returned stats byte-for-byte, which is impossible against a real
//! clock.
//!
//! Timestamps are nanoseconds since an arbitrary per-clock epoch; only
//! differences are meaningful. [`WallClock`] anchors its epoch at
//! construction, so `now_ns` starts near zero and a `u64` holds
//! centuries of nanoseconds.

use std::cell::Cell;
use std::fmt::Debug;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond clock.
///
/// Implementations must be monotone: successive `now_ns` calls never
/// decrease. The epoch is arbitrary and per-instance.
pub trait Clock: Debug {
    /// Nanoseconds elapsed since this clock's epoch.
    fn now_ns(&self) -> u64;
}

impl<C: Clock + ?Sized> Clock for Rc<C> {
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }
}

impl<C: Clock + ?Sized> Clock for Arc<C> {
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }
}

impl<C: Clock + ?Sized> Clock for &C {
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }
}

/// The real monotonic clock, anchored at construction.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is the moment of this call.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        // ~584 years of nanoseconds fit in a u64; the origin is this
        // process's startup, so the cast never truncates in practice.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A deterministic clock for tests: time moves only when told to.
///
/// With a zero tick the clock is frozen; [`ManualClock::with_tick`]
/// makes every `now_ns` *read* advance time by a fixed step, which
/// gives deterministic non-zero durations without any test hooks
/// inside the code under measurement. Share one across a harness via
/// `Rc` (the blanket `Clock for Rc<C>` impl).
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: Cell<u64>,
    tick: u64,
}

impl ManualClock {
    /// A frozen clock starting at 0 ns.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// A clock that auto-advances by `tick_ns` on every `now_ns` read
    /// (the reported value is the pre-advance time).
    pub fn with_tick(tick_ns: u64) -> Self {
        ManualClock {
            ns: Cell::new(0),
            tick: tick_ns,
        }
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.ns.set(self.ns.get().saturating_add(ns));
    }

    /// Sets the clock to an absolute time. Panics if time would move
    /// backwards (the [`Clock`] contract is monotone).
    pub fn set(&self, ns: u64) {
        assert!(
            ns >= self.ns.get(),
            "ManualClock::set would move time backwards ({} -> {ns})",
            self.ns.get()
        );
        self.ns.set(ns);
    }

    /// The current time without advancing (even under `with_tick`).
    pub fn peek_ns(&self) -> u64 {
        self.ns.get()
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        let now = self.ns.get();
        if self.tick > 0 {
            self.ns.set(now.saturating_add(self.tick));
        }
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_and_near_zero_epoch() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        // The epoch is construction time, not process start or Unix
        // epoch: the first reading is tiny.
        assert!(a < 1_000_000_000, "first reading {a} ns after anchor");
    }

    #[test]
    fn manual_clock_is_frozen_until_advanced() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0);
        c.advance(25);
        assert_eq!(c.now_ns(), 25);
        c.set(100);
        assert_eq!(c.now_ns(), 100);
    }

    #[test]
    fn manual_clock_auto_tick_advances_per_read() {
        let c = ManualClock::with_tick(10);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 10);
        assert_eq!(c.peek_ns(), 20);
        assert_eq!(c.now_ns(), 20);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_rejects_backwards_set() {
        let c = ManualClock::new();
        c.set(10);
        c.set(5);
    }

    #[test]
    fn clock_through_rc_and_ref() {
        let c = Rc::new(ManualClock::new());
        c.advance(7);
        assert_eq!(Clock::now_ns(&c), 7);
        let r: &dyn Clock = &*c;
        assert_eq!(r.now_ns(), 7);
    }
}
