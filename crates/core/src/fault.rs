//! Crash (stopping-failure) injection for wait-freedom experiments.

use std::collections::HashMap;

use crate::ids::ProcessId;

/// A plan of stopping failures: which processes crash, and when.
///
/// The naming problem (Section 3) requires *wait-free* solutions: every
/// participating process terminates in a finite number of its own steps
/// regardless of the behavior of others — including others crashing
/// mid-protocol. A `FaultPlan` tells the executor to silence a process
/// permanently after it has taken a given number of steps.
///
/// # Examples
///
/// ```
/// use cfc_core::{FaultPlan, ProcessId};
///
/// let plan = FaultPlan::new().with_crash(ProcessId::new(1), 3);
/// assert!(!plan.should_crash(ProcessId::new(1), 2));
/// assert!(plan.should_crash(ProcessId::new(1), 3));
/// assert!(!plan.should_crash(ProcessId::new(0), 3));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    crash_after: HashMap<ProcessId, u64>,
}

impl FaultPlan {
    /// Creates a plan with no failures.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a crash: `pid` fails permanently once it has taken `steps`
    /// steps (so `steps = 0` means the process never takes a step).
    pub fn with_crash(mut self, pid: ProcessId, steps: u64) -> Self {
        self.crash_after.insert(pid, steps);
        self
    }

    /// Returns `true` if the plan contains no failures.
    pub fn is_empty(&self) -> bool {
        self.crash_after.is_empty()
    }

    /// The number of planned failures.
    pub fn len(&self) -> usize {
        self.crash_after.len()
    }

    /// Should `pid` crash now, given it has taken `steps_taken` steps?
    pub fn should_crash(&self, pid: ProcessId, steps_taken: u64) -> bool {
        self.crash_after
            .get(&pid)
            .is_some_and(|&limit| steps_taken >= limit)
    }

    /// The step budget after which `pid` crashes, if planned.
    pub fn crash_point(&self, pid: ProcessId) -> Option<u64> {
        self.crash_after.get(&pid).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_crashes() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert!(!plan.should_crash(ProcessId::new(0), 1_000_000));
    }

    #[test]
    fn crash_at_zero_steps_is_immediate() {
        let plan = FaultPlan::new().with_crash(ProcessId::new(2), 0);
        assert!(plan.should_crash(ProcessId::new(2), 0));
        assert_eq!(plan.crash_point(ProcessId::new(2)), Some(0));
        assert_eq!(plan.crash_point(ProcessId::new(1)), None);
    }

    #[test]
    fn later_crashes_trigger_at_threshold() {
        let plan = FaultPlan::new()
            .with_crash(ProcessId::new(0), 5)
            .with_crash(ProcessId::new(1), 7);
        assert_eq!(plan.len(), 2);
        assert!(!plan.should_crash(ProcessId::new(0), 4));
        assert!(plan.should_crash(ProcessId::new(0), 5));
        assert!(plan.should_crash(ProcessId::new(0), 6));
        assert!(!plan.should_crash(ProcessId::new(1), 6));
    }
}
