//! Error types for layout construction, memory access, and execution.

use std::error::Error;
use std::fmt;

use crate::ids::{RegisterId, WordId};
use crate::value::Value;

/// An error building a [`Layout`](crate::Layout).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LayoutError {
    /// A register width was zero or exceeded [`MAX_WIDTH`](crate::MAX_WIDTH).
    InvalidWidth {
        /// The offending register's name.
        name: String,
        /// The requested width.
        width: u32,
    },
    /// An initial value did not fit in the register's declared width.
    InitTooWide {
        /// The offending register's name.
        name: String,
        /// The declared width.
        width: u32,
        /// The requested initial value (raw).
        init: u64,
    },
    /// A register was packed into more than one word.
    AlreadyPacked(RegisterId),
    /// A pack request named a register that does not exist.
    UnknownRegister(RegisterId),
    /// A pack request contained no registers.
    EmptyWord,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::InvalidWidth { name, width } => {
                write!(f, "register `{name}` has invalid width {width}")
            }
            LayoutError::InitTooWide { name, width, init } => {
                write!(
                    f,
                    "initial value {init} of register `{name}` does not fit in {width} bits"
                )
            }
            LayoutError::AlreadyPacked(r) => {
                write!(f, "register {r} is already packed into a word")
            }
            LayoutError::UnknownRegister(r) => write!(f, "unknown register {r}"),
            LayoutError::EmptyWord => write!(f, "a packed word must contain a register"),
        }
    }
}

impl Error for LayoutError {}

/// An error accessing shared [`Memory`](crate::Memory).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemoryError {
    /// A register is wider than the system's atomicity, so it can never be
    /// accessed in one atomic step.
    WidthExceedsAtomicity {
        /// The offending register.
        register: RegisterId,
        /// The register's width.
        width: u32,
        /// The system atomicity `l`.
        atomicity: u32,
    },
    /// A packed word is wider than the system's atomicity.
    WordExceedsAtomicity {
        /// The offending word.
        word: WordId,
        /// The word's total width.
        width: u32,
        /// The system atomicity `l`.
        atomicity: u32,
    },
    /// A single-bit operation was applied to a register wider than one bit.
    NotABit {
        /// The offending register.
        register: RegisterId,
        /// The register's width.
        width: u32,
    },
    /// An access named a register that does not exist.
    UnknownRegister(RegisterId),
    /// An access named a packed word that does not exist.
    UnknownWord(WordId),
    /// A packed write named a register outside the word.
    FieldNotInWord {
        /// The word being written.
        word: WordId,
        /// The register that is not a member of the word.
        register: RegisterId,
    },
    /// The atomicity was zero or exceeded [`MAX_WIDTH`](crate::MAX_WIDTH).
    InvalidAtomicity(u32),
    /// A plain or packed write carried a value wider than its destination
    /// register. Such a write is a bug in the issuing algorithm (or a
    /// deliberately bounded simulation overflowing, like the bakery's
    /// tickets), so it surfaces as a structured error instead of being
    /// silently truncated.
    ValueTooWide {
        /// The register being written.
        register: RegisterId,
        /// The register's width.
        width: u32,
        /// The over-wide value.
        value: Value,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::WidthExceedsAtomicity {
                register,
                width,
                atomicity,
            } => write!(
                f,
                "register {register} has width {width} but atomicity is {atomicity}"
            ),
            MemoryError::WordExceedsAtomicity {
                word,
                width,
                atomicity,
            } => write!(
                f,
                "packed word {word} has width {width} but atomicity is {atomicity}"
            ),
            MemoryError::NotABit { register, width } => {
                write!(
                    f,
                    "bit operation applied to register {register} of width {width}"
                )
            }
            MemoryError::UnknownRegister(r) => write!(f, "unknown register {r}"),
            MemoryError::UnknownWord(w) => write!(f, "unknown packed word {w}"),
            MemoryError::FieldNotInWord { word, register } => {
                write!(f, "register {register} is not a field of word {word}")
            }
            MemoryError::InvalidAtomicity(l) => write!(f, "invalid atomicity {l}"),
            MemoryError::ValueTooWide {
                register,
                width,
                value,
            } => write!(
                f,
                "value {} does not fit register {register} of width {width}",
                value.raw()
            ),
        }
    }
}

impl Error for MemoryError {}

/// An error during a run of the [`Executor`](crate::Executor).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The event budget was exhausted before the run quiesced; the run may
    /// contain a livelock, or the budget was simply too small.
    Budget {
        /// The number of events executed before giving up.
        events: u64,
    },
    /// A process issued an invalid memory operation.
    Memory(MemoryError),
    /// The scheduler picked a process that is not runnable.
    NotRunnable(crate::ProcessId),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Budget { events } => {
                write!(f, "event budget exhausted after {events} events")
            }
            ExecError::Memory(e) => write!(f, "memory error: {e}"),
            ExecError::NotRunnable(p) => write!(f, "scheduled process {p} is not runnable"),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemoryError> for ExecError {
    fn from(e: MemoryError) -> Self {
        ExecError::Memory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = MemoryError::NotABit {
            register: RegisterId::new(3),
            width: 8,
        };
        assert_eq!(e.to_string(), "bit operation applied to register r3 of width 8");
        let e = ExecError::Budget { events: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn exec_error_wraps_memory_error() {
        let inner = MemoryError::UnknownRegister(RegisterId::new(1));
        let outer = ExecError::from(inner.clone());
        assert_eq!(outer, ExecError::Memory(inner));
        assert!(Error::source(&outer).is_some());
    }
}
