//! Schedulers: who takes the next step.
//!
//! The paper's model is fully asynchronous — a run is *any* interleaving of
//! process steps. A [`Scheduler`] realizes one interleaving policy:
//!
//! * [`Solo`] and [`Sequential`] produce the contention-free runs over
//!   which contention-free complexity is defined.
//! * [`RoundRobin`] and [`Lockstep`] are the fair schedules used for
//!   progress experiments and for the Theorem 6 adversary.
//! * [`RandomSched`] drives randomized stress tests.
//! * [`FixedOrder`] replays a scripted interleaving (used by the Lemma 2
//!   merge attack in `cfc-verify`).

use rand::Rng;

use crate::ids::ProcessId;

/// Chooses which runnable process takes the next step.
pub trait Scheduler {
    /// Picks one of the `runnable` processes, or `None` to stop the run.
    ///
    /// `runnable` is never empty and is sorted by process id.
    fn pick(&mut self, runnable: &[ProcessId]) -> Option<ProcessId>;
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn pick(&mut self, runnable: &[ProcessId]) -> Option<ProcessId> {
        (**self).pick(runnable)
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn pick(&mut self, runnable: &[ProcessId]) -> Option<ProcessId> {
        (**self).pick(runnable)
    }
}

/// Schedules a single process and stops when it is not runnable.
///
/// Running one process in isolation produces the runs over which
/// contention-free complexity is defined (all other processes remain in
/// their remainder regions / have not started).
#[derive(Clone, Copy, Debug)]
pub struct Solo(pub ProcessId);

impl Scheduler for Solo {
    fn pick(&mut self, runnable: &[ProcessId]) -> Option<ProcessId> {
        runnable.contains(&self.0).then_some(self.0)
    }
}

/// Runs each process to completion in id order.
///
/// This is the canonical contention-free schedule for naming (Theorems 5
/// and 7): every process executes while all others have either terminated
/// or not started.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sequential;

impl Scheduler for Sequential {
    fn pick(&mut self, runnable: &[ProcessId]) -> Option<ProcessId> {
        runnable.first().copied()
    }
}

/// Fair round-robin: cycles through runnable processes.
///
/// Because our model expresses waiting as busy-wait steps, round-robin is a
/// (weakly) fair schedule: every non-halted process keeps taking steps.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobin {
    cursor: u32,
}

impl RoundRobin {
    /// Creates a round-robin scheduler starting at process 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, runnable: &[ProcessId]) -> Option<ProcessId> {
        // Pick the first runnable pid strictly greater than the last pick,
        // wrapping around.
        let next = runnable
            .iter()
            .find(|p| p.index() as u32 >= self.cursor)
            .or_else(|| runnable.first())
            .copied()?;
        self.cursor = next.index() as u32 + 1;
        Some(next)
    }
}

/// Lockstep rounds: in each round, every process runnable at the start of
/// the round takes exactly one step, in id order.
///
/// This is the adversary of Theorem 6: identical processes driven in
/// lockstep stay identical as long as they receive identical responses,
/// forcing the worst-case `n − 1` step complexity for naming without
/// `test-and-flip`.
#[derive(Clone, Debug, Default)]
pub struct Lockstep {
    round: Vec<ProcessId>,
}

impl Lockstep {
    /// Creates a lockstep scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for Lockstep {
    fn pick(&mut self, runnable: &[ProcessId]) -> Option<ProcessId> {
        loop {
            match self.round.pop() {
                Some(p) if runnable.contains(&p) => return Some(p),
                Some(_) => continue, // halted mid-round; skip
                None => {
                    // Start a new round; reversed so `pop` yields id order.
                    self.round = runnable.iter().rev().copied().collect();
                }
            }
        }
    }
}

/// Uniformly random scheduling.
#[derive(Clone, Debug)]
pub struct RandomSched<R> {
    rng: R,
}

impl<R: Rng> RandomSched<R> {
    /// Creates a random scheduler from an RNG.
    pub fn new(rng: R) -> Self {
        RandomSched { rng }
    }
}

impl<R: Rng> Scheduler for RandomSched<R> {
    fn pick(&mut self, runnable: &[ProcessId]) -> Option<ProcessId> {
        let i = self.rng.gen_range(0..runnable.len());
        Some(runnable[i])
    }
}

/// Replays a scripted sequence of process ids.
///
/// After the script is exhausted the scheduler either stops (default) or
/// falls back to round-robin if constructed with [`FixedOrder::then_fair`].
/// Script entries that are not currently runnable are skipped.
#[derive(Clone, Debug)]
pub struct FixedOrder {
    script: std::collections::VecDeque<ProcessId>,
    fallback: Option<RoundRobin>,
}

impl FixedOrder {
    /// Creates a scheduler that replays `script` and then stops.
    pub fn new(script: impl IntoIterator<Item = ProcessId>) -> Self {
        FixedOrder {
            script: script.into_iter().collect(),
            fallback: None,
        }
    }

    /// Creates a scheduler that replays `script` and then continues fairly.
    pub fn then_fair(script: impl IntoIterator<Item = ProcessId>) -> Self {
        FixedOrder {
            script: script.into_iter().collect(),
            fallback: Some(RoundRobin::new()),
        }
    }

    /// The number of unconsumed script entries.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl Scheduler for FixedOrder {
    fn pick(&mut self, runnable: &[ProcessId]) -> Option<ProcessId> {
        while let Some(p) = self.script.pop_front() {
            if runnable.contains(&p) {
                return Some(p);
            }
        }
        match &mut self.fallback {
            Some(rr) => rr.pick(runnable),
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(ids: &[u32]) -> Vec<ProcessId> {
        ids.iter().map(|&i| ProcessId::new(i)).collect()
    }

    #[test]
    fn solo_only_schedules_its_process() {
        let mut s = Solo(ProcessId::new(1));
        assert_eq!(s.pick(&pids(&[0, 1, 2])), Some(ProcessId::new(1)));
        assert_eq!(s.pick(&pids(&[0, 2])), None);
    }

    #[test]
    fn sequential_prefers_lowest_id() {
        let mut s = Sequential;
        assert_eq!(s.pick(&pids(&[2, 3])), Some(ProcessId::new(2)));
        assert_eq!(s.pick(&pids(&[0, 3])), Some(ProcessId::new(0)));
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = RoundRobin::new();
        let r = pids(&[0, 1, 2]);
        let picks: Vec<_> = (0..6).map(|_| s.pick(&r).unwrap().index()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_halted() {
        let mut s = RoundRobin::new();
        assert_eq!(s.pick(&pids(&[0, 1, 2])), Some(ProcessId::new(0)));
        // Process 1 halts; next pick should be 2, not 1.
        assert_eq!(s.pick(&pids(&[0, 2])), Some(ProcessId::new(2)));
        assert_eq!(s.pick(&pids(&[0, 2])), Some(ProcessId::new(0)));
    }

    #[test]
    fn lockstep_gives_one_step_per_round() {
        let mut s = Lockstep::new();
        let r = pids(&[0, 1, 2]);
        let picks: Vec<_> = (0..6).map(|_| s.pick(&r).unwrap().index()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn lockstep_handles_mid_round_halts() {
        let mut s = Lockstep::new();
        assert_eq!(s.pick(&pids(&[0, 1, 2])), Some(ProcessId::new(0)));
        // 1 halted: the rest of the round is 2 only.
        assert_eq!(s.pick(&pids(&[0, 2])), Some(ProcessId::new(2)));
        // New round over the survivors.
        assert_eq!(s.pick(&pids(&[0, 2])), Some(ProcessId::new(0)));
    }

    #[test]
    fn fixed_order_replays_then_stops() {
        let mut s = FixedOrder::new(pids(&[1, 0, 1]));
        let r = pids(&[0, 1]);
        assert_eq!(s.pick(&r), Some(ProcessId::new(1)));
        assert_eq!(s.pick(&r), Some(ProcessId::new(0)));
        assert_eq!(s.pick(&r), Some(ProcessId::new(1)));
        assert_eq!(s.pick(&r), None);
    }

    #[test]
    fn fixed_order_skips_unrunnable_and_falls_back() {
        let mut s = FixedOrder::then_fair(pids(&[5, 1]));
        let r = pids(&[0, 1]);
        // 5 is not runnable; script advances to 1.
        assert_eq!(s.pick(&r), Some(ProcessId::new(1)));
        // Script exhausted; fair fallback takes over.
        assert!(s.pick(&r).is_some());
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn random_sched_picks_runnable() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut s = RandomSched::new(StdRng::seed_from_u64(7));
        let r = pids(&[3, 4]);
        for _ in 0..20 {
            let p = s.pick(&r).unwrap();
            assert!(r.contains(&p));
        }
    }
}
