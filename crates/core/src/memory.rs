//! The shared memory: register storage plus atomic operation semantics.

use std::fmt;
use std::sync::Arc;

use crate::bitop::BitOp;
use crate::error::MemoryError;
use crate::ids::{RegisterId, WordId};
use crate::layout::Layout;
use crate::op::{Op, OpResult};
use crate::value::{Value, MAX_WIDTH};

/// The shared memory of a simulated system.
///
/// A memory is created from a [`Layout`] and an *atomicity* `l` — the paper's
/// bound on the size (in bits) of the biggest register that can be accessed
/// in one atomic step. Construction fails if any register, or any packed
/// word, is wider than `l`, so every operation ever applied is guaranteed to
/// be a legal atomic step.
///
/// Cloning a memory is cheap (`O(registers)`) and clones share the layout;
/// the model checker in `cfc-verify` relies on this.
#[derive(Clone, Debug)]
pub struct Memory {
    layout: Arc<Layout>,
    values: Vec<Value>,
    atomicity: u32,
}

impl Memory {
    /// Creates a memory with the given atomicity.
    ///
    /// # Errors
    ///
    /// Returns an error if the atomicity is zero or exceeds
    /// [`MAX_WIDTH`], or if any register or packed word is wider than the
    /// atomicity.
    pub fn new(layout: Layout, atomicity: u32) -> Result<Self, MemoryError> {
        if atomicity == 0 || atomicity > MAX_WIDTH {
            return Err(MemoryError::InvalidAtomicity(atomicity));
        }
        for (id, spec) in layout.iter() {
            if spec.width() > atomicity {
                return Err(MemoryError::WidthExceedsAtomicity {
                    register: id,
                    width: spec.width(),
                    atomicity,
                });
            }
        }
        for i in 0..layout.word_count() {
            let w = WordId::new(i as u32);
            let width = layout.word_width(w).expect("word exists");
            if width > atomicity {
                return Err(MemoryError::WordExceedsAtomicity {
                    word: w,
                    width,
                    atomicity,
                });
            }
        }
        let values = layout.iter().map(|(_, s)| s.init()).collect();
        Ok(Memory {
            layout: Arc::new(layout),
            values,
            atomicity,
        })
    }

    /// Creates a memory whose atomicity is exactly what the layout requires.
    ///
    /// # Errors
    ///
    /// Returns an error if the layout requires an atomicity above
    /// [`MAX_WIDTH`].
    pub fn with_minimal_atomicity(layout: Layout) -> Result<Self, MemoryError> {
        let l = layout.required_atomicity().max(1);
        Memory::new(layout, l)
    }

    /// The system atomicity `l`.
    pub fn atomicity(&self) -> u32 {
        self.atomicity
    }

    /// The layout this memory was created from.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// A clonable handle to the layout.
    pub fn layout_arc(&self) -> Arc<Layout> {
        Arc::clone(&self.layout)
    }

    /// The current value of a register.
    ///
    /// # Panics
    ///
    /// Panics if the register id is out of range.
    pub fn get(&self, r: RegisterId) -> Value {
        self.values[r.index()]
    }

    /// Overwrites a register without producing an event.
    ///
    /// This is a test/setup convenience, not an atomic step of any process.
    ///
    /// # Panics
    ///
    /// Panics if the register id is out of range.
    pub fn poke(&mut self, r: RegisterId, v: Value) {
        let width = self.layout.width(r);
        self.values[r.index()] = v.masked(width);
    }

    /// Resets every register to its initial value.
    pub fn reset(&mut self) {
        for (i, (_, spec)) in self.layout.iter().enumerate() {
            self.values[i] = spec.init();
        }
    }

    /// A snapshot of all register values, suitable for hashing a state.
    pub fn snapshot(&self) -> &[Value] {
        &self.values
    }

    /// Applies one atomic operation, returning its result.
    ///
    /// # Errors
    ///
    /// Returns an error if the operation names an unknown register or word,
    /// applies a bit operation to a wide register, writes a field outside
    /// its word, or writes a value wider than its destination register
    /// ([`MemoryError::ValueTooWide`] — a real step never silently
    /// truncates; [`Memory::poke`], the test/setup hook, masks instead).
    /// Width violations against the atomicity cannot occur here — they are
    /// ruled out at construction.
    pub fn apply(&mut self, op: &Op) -> Result<OpResult, MemoryError> {
        match op {
            Op::Read(r) => {
                let v = self.checked_get(*r)?;
                Ok(OpResult::Value(v))
            }
            Op::Write(r, v) => {
                let width = self
                    .layout
                    .get(*r)
                    .ok_or(MemoryError::UnknownRegister(*r))?
                    .width();
                if !v.fits(width) {
                    return Err(MemoryError::ValueTooWide {
                        register: *r,
                        width,
                        value: *v,
                    });
                }
                self.values[r.index()] = *v;
                Ok(OpResult::None)
            }
            Op::Bit(r, bop) => self.apply_bit(*r, *bop),
            Op::ReadWord(w) => {
                let members = self
                    .layout
                    .word_members(*w)
                    .ok_or(MemoryError::UnknownWord(*w))?;
                let vs = members.iter().map(|&r| self.values[r.index()]).collect();
                Ok(OpResult::Values(vs))
            }
            Op::WriteWord(w, fields) => {
                let members = self
                    .layout
                    .word_members(*w)
                    .ok_or(MemoryError::UnknownWord(*w))?;
                for &(r, _) in fields {
                    if !members.contains(&r) {
                        return Err(MemoryError::FieldNotInWord { word: *w, register: r });
                    }
                }
                for &(r, v) in fields {
                    let width = self.layout.width(r);
                    if !v.fits(width) {
                        return Err(MemoryError::ValueTooWide {
                            register: r,
                            width,
                            value: v,
                        });
                    }
                }
                for &(r, v) in fields {
                    self.values[r.index()] = v;
                }
                Ok(OpResult::None)
            }
        }
    }

    fn checked_get(&self, r: RegisterId) -> Result<Value, MemoryError> {
        self.values
            .get(r.index())
            .copied()
            .ok_or(MemoryError::UnknownRegister(r))
    }

    fn apply_bit(&mut self, r: RegisterId, bop: BitOp) -> Result<OpResult, MemoryError> {
        let spec = self.layout.get(r).ok_or(MemoryError::UnknownRegister(r))?;
        if spec.width() != 1 {
            return Err(MemoryError::NotABit {
                register: r,
                width: spec.width(),
            });
        }
        let old = self.values[r.index()].bit();
        let (new, returned) = bop.apply(old);
        self.values[r.index()] = Value::from(new);
        Ok(match returned {
            Some(b) => OpResult::Value(Value::from(b)),
            None => OpResult::None,
        })
    }
}

impl PartialEq for Memory {
    /// Two memories are equal if they hold the same register values.
    ///
    /// Layout equality is not rechecked: comparing memories from different
    /// layouts is a logic error that equality does not attempt to detect.
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}

impl Eq for Memory {}

impl std::hash::Hash for Memory {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.values.hash(state);
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory (l={}):", self.atomicity)?;
        for (id, spec) in self.layout.iter() {
            write!(f, " {}={}", spec.name(), self.values[id.index()])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bit_layout() -> (Layout, RegisterId) {
        let mut layout = Layout::new();
        let b = layout.bit("b", false);
        (layout, b)
    }

    #[test]
    fn construction_validates_atomicity() {
        let mut layout = Layout::new();
        layout.register("x", 8, 0);
        assert!(matches!(
            Memory::new(layout.clone(), 4),
            Err(MemoryError::WidthExceedsAtomicity { .. })
        ));
        assert!(Memory::new(layout, 8).is_ok());
    }

    #[test]
    fn construction_validates_word_width() {
        let mut layout = Layout::new();
        let x = layout.register("x", 4, 0);
        let y = layout.register("y", 4, 0);
        layout.pack(&[x, y]).unwrap();
        assert!(matches!(
            Memory::new(layout.clone(), 4),
            Err(MemoryError::WordExceedsAtomicity { .. })
        ));
        assert!(Memory::new(layout, 8).is_ok());
    }

    #[test]
    fn invalid_atomicity_rejected() {
        let (layout, _) = bit_layout();
        assert!(matches!(
            Memory::new(layout.clone(), 0),
            Err(MemoryError::InvalidAtomicity(0))
        ));
        assert!(matches!(
            Memory::new(layout, 64),
            Err(MemoryError::InvalidAtomicity(64))
        ));
    }

    #[test]
    fn minimal_atomicity_uses_layout_requirement() {
        let mut layout = Layout::new();
        layout.register("x", 5, 0);
        let m = Memory::with_minimal_atomicity(layout).unwrap();
        assert_eq!(m.atomicity(), 5);
    }

    #[test]
    fn read_write_round_trip() {
        let mut layout = Layout::new();
        let x = layout.register("x", 4, 3);
        let mut m = Memory::new(layout, 4).unwrap();
        assert_eq!(m.apply(&Op::Read(x)).unwrap(), OpResult::Value(Value::new(3)));
        m.apply(&Op::Write(x, Value::new(9))).unwrap();
        assert_eq!(m.get(x), Value::new(9));
    }

    #[test]
    fn over_wide_writes_are_structured_errors() {
        // A plain write that exceeds the register width must surface as
        // `ValueTooWide` with the register untouched — not be silently
        // masked (the historical behavior, which hid real overflow bugs
        // like the bakery's bounded tickets behind truncated values).
        let mut layout = Layout::new();
        let x = layout.register("x", 2, 0);
        let mut m = Memory::new(layout, 2).unwrap();
        let err = m.apply(&Op::Write(x, Value::new(0b111))).unwrap_err();
        assert_eq!(
            err,
            MemoryError::ValueTooWide {
                register: x,
                width: 2,
                value: Value::new(0b111),
            }
        );
        assert_eq!(m.get(x), Value::ZERO, "failed writes must not land");
        // `poke`, the test/setup hook, still masks.
        m.poke(x, Value::new(0b111));
        assert_eq!(m.get(x), Value::new(0b11));
    }

    #[test]
    fn over_wide_packed_writes_are_rejected_atomically() {
        let mut layout = Layout::new();
        let x = layout.register("x", 4, 0);
        let y = layout.register("y", 2, 0);
        let w = layout.pack(&[x, y]).unwrap();
        let mut m = Memory::new(layout, 8).unwrap();
        let err = m
            .apply(&Op::WriteWord(w, vec![(x, Value::new(5)), (y, Value::new(7))]))
            .unwrap_err();
        assert!(matches!(err, MemoryError::ValueTooWide { register, .. } if register == y));
        // No field of the failed word write may land.
        assert_eq!(m.get(x), Value::ZERO);
        assert_eq!(m.get(y), Value::ZERO);
    }

    #[test]
    fn bit_ops_respect_semantics() {
        let (layout, b) = bit_layout();
        let mut m = Memory::new(layout, 1).unwrap();
        assert_eq!(
            m.apply(&Op::Bit(b, BitOp::TestAndSet)).unwrap(),
            OpResult::Value(Value::from(false))
        );
        assert_eq!(m.get(b), Value::ONE);
        assert_eq!(
            m.apply(&Op::Bit(b, BitOp::TestAndSet)).unwrap(),
            OpResult::Value(Value::from(true))
        );
        assert_eq!(
            m.apply(&Op::Bit(b, BitOp::TestAndFlip)).unwrap(),
            OpResult::Value(Value::from(true))
        );
        assert_eq!(m.get(b), Value::ZERO);
        assert_eq!(m.apply(&Op::Bit(b, BitOp::Flip)).unwrap(), OpResult::None);
        assert_eq!(m.get(b), Value::ONE);
    }

    #[test]
    fn bit_op_on_wide_register_rejected() {
        let mut layout = Layout::new();
        let x = layout.register("x", 2, 0);
        let mut m = Memory::new(layout, 2).unwrap();
        assert!(matches!(
            m.apply(&Op::Bit(x, BitOp::Read)),
            Err(MemoryError::NotABit { .. })
        ));
    }

    #[test]
    fn packed_word_access() {
        let mut layout = Layout::new();
        let x = layout.register("x", 4, 1);
        let y = layout.register("y", 4, 2);
        let w = layout.pack(&[x, y]).unwrap();
        let mut m = Memory::new(layout, 8).unwrap();

        let r = m.apply(&Op::ReadWord(w)).unwrap();
        assert_eq!(r.values(), &[Value::new(1), Value::new(2)]);

        m.apply(&Op::WriteWord(w, vec![(y, Value::new(7))])).unwrap();
        assert_eq!(m.get(x), Value::new(1));
        assert_eq!(m.get(y), Value::new(7));
    }

    #[test]
    fn packed_write_rejects_foreign_field() {
        let mut layout = Layout::new();
        let x = layout.bit("x", false);
        let y = layout.bit("y", false);
        let z = layout.bit("z", false);
        let w = layout.pack(&[x, y]).unwrap();
        let mut m = Memory::new(layout, 2).unwrap();
        assert!(matches!(
            m.apply(&Op::WriteWord(w, vec![(z, Value::ONE)])),
            Err(MemoryError::FieldNotInWord { .. })
        ));
    }

    #[test]
    fn unknown_register_errors() {
        let (layout, _) = bit_layout();
        let mut m = Memory::new(layout, 1).unwrap();
        let ghost = RegisterId::new(42);
        assert!(matches!(
            m.apply(&Op::Read(ghost)),
            Err(MemoryError::UnknownRegister(_))
        ));
        assert!(matches!(
            m.apply(&Op::ReadWord(WordId::new(3))),
            Err(MemoryError::UnknownWord(_))
        ));
    }

    #[test]
    fn reset_restores_initial_values() {
        let mut layout = Layout::new();
        let x = layout.register("x", 4, 5);
        let mut m = Memory::new(layout, 4).unwrap();
        m.apply(&Op::Write(x, Value::new(1))).unwrap();
        m.reset();
        assert_eq!(m.get(x), Value::new(5));
    }

    #[test]
    fn equality_and_hash_track_values_only() {
        use std::collections::HashSet;
        let (layout, b) = bit_layout();
        let m1 = Memory::new(layout.clone(), 1).unwrap();
        let mut m2 = m1.clone();
        assert_eq!(m1, m2);
        m2.poke(b, Value::ONE);
        assert_ne!(m1, m2);
        let mut set = HashSet::new();
        set.insert(m1.clone());
        assert!(set.contains(&m1));
        assert!(!set.contains(&m2));
    }
}
