//! Formal execution model for asynchronous shared-memory algorithms.
//!
//! This crate is the substrate of the reproduction of *Alur & Taubenfeld,
//! "Contention-Free Complexity of Shared Memory Algorithms"* (PODC 1994;
//! Information and Computation 126, 62–73, 1996). It implements the paper's
//! model of computation (Section 2.2) exactly:
//!
//! * **Shared registers** of bounded bit width, where the *atomicity* `l` of
//!   a system is the width of the largest register that can be accessed in
//!   one atomic step ([`Memory`], [`Layout`]).
//! * **Single-bit read–modify–write operations** — the eight operations of
//!   Section 3.1 ([`BitOp`]).
//! * **Multi-grain packed words** in the style of Michael & Scott [MS93]:
//!   several small registers packed into one word, accessible in a single
//!   atomic event ([`Layout::pack`]).
//! * **Processes as state machines** ([`Process`]): a run is an alternating
//!   sequence of states and events, each event belonging to one process.
//! * **Runs and traces** ([`Trace`], [`Event`]) produced by an interleaving
//!   [`Executor`] driven by a pluggable [`Scheduler`], with crash injection
//!   ([`FaultPlan`]) for wait-freedom experiments.
//! * **The four complexity measures** — {contention-free, worst-case} ×
//!   {step, register} — computed from traces ([`metrics`]).
//!
//! # Quick example
//!
//! A process that reads a bit and writes its complement back:
//!
//! ```
//! use cfc_core::{Layout, Memory, Op, OpResult, Process, Step, Value, run_solo};
//!
//! #[derive(Clone, Debug, PartialEq, Eq, Hash)]
//! struct Inverter {
//!     reg: cfc_core::RegisterId,
//!     pc: u8,
//!     seen: bool,
//! }
//!
//! impl Process for Inverter {
//!     fn current(&self) -> Step {
//!         match self.pc {
//!             0 => Step::Op(Op::Read(self.reg)),
//!             1 => Step::Op(Op::Write(self.reg, Value::from(!self.seen))),
//!             _ => Step::Halt,
//!         }
//!     }
//!     fn advance(&mut self, result: OpResult) {
//!         if self.pc == 0 {
//!             self.seen = result.bit();
//!         }
//!         self.pc += 1;
//!     }
//! }
//!
//! # fn main() -> Result<(), cfc_core::ExecError> {
//! let mut layout = Layout::new();
//! let reg = layout.bit("flag", false);
//! let memory = Memory::new(layout, 1)?;
//! let (trace, _proc, memory) = run_solo(memory, Inverter { reg, pc: 0, seen: false })?;
//! assert_eq!(memory.get(reg), Value::from(true));
//! assert_eq!(trace.access_count(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitop;
mod clock;
mod codec;
mod error;
mod exec;
mod fault;
mod footprint;
mod havoc;
mod ids;
mod layout;
mod memory;
pub mod metrics;
mod op;
mod process;
mod sched;
mod sym;
mod trace;
mod value;
mod vclock;

pub use bitop::BitOp;
pub use clock::{Clock, ManualClock, WallClock};
pub use codec::{LayoutCodec, StateCodec, StateReader, StateWriter};
pub use error::{ExecError, LayoutError, MemoryError};
pub use exec::{run_schedule, run_sequential, run_solo, ExecConfig, Executor, Outcome, Status};
pub use fault::FaultPlan;
pub use footprint::{Footprint, RegisterSet};
pub use havoc::{op_result_domain, HAVOC_WIDTH_CAP};
pub use ids::{ProcessId, RegisterId, WordId};
pub use layout::{Layout, RegisterSpec};
pub use memory::Memory;
pub use metrics::Complexity;
pub use op::{AccessClass, Op, OpResult, Step};
pub use process::{Process, Section};
pub use sym::SymmetryGroup;
pub use sched::{FixedOrder, Lockstep, RandomSched, RoundRobin, Scheduler, Sequential, Solo};
pub use trace::{Event, EventKind, Trace};
pub use value::{bits_for, mask, Value, MAX_WIDTH};
pub use vclock::VectorClock;
