//! The eight single-bit operations of Section 3.1 of the paper.

use std::fmt;

/// An atomic operation on a single shared bit.
///
/// Section 3.1 of the paper lists eight operations a process may apply to a
/// shared bit in one atomic step. A *model* (see `cfc-naming`) is a subset
/// of these operations; there are 2⁸ models. Each operation is defined by
/// how it transforms the bit and whether it returns the bit's old value.
///
/// | Operation | New value | Returns old value? |
/// |---|---|---|
/// | `Skip` | unchanged | no |
/// | `Read` | unchanged | yes |
/// | `Write0` | `0` | no |
/// | `TestAndReset` | `0` | yes |
/// | `Write1` | `1` | no |
/// | `TestAndSet` | `1` | yes |
/// | `Flip` | complement | no |
/// | `TestAndFlip` | complement | yes |
///
/// `TestAndFlip` is the paper's *fetch-and-complement* (the balancer of
/// counting networks [AHS91]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BitOp {
    /// No effect, no return value.
    Skip,
    /// No effect; returns the current value.
    Read,
    /// Sets the bit to `0`; no return value.
    Write0,
    /// Sets the bit to `0`; returns the old value.
    TestAndReset,
    /// Sets the bit to `1`; no return value.
    Write1,
    /// Sets the bit to `1`; returns the old value.
    TestAndSet,
    /// Complements the bit; no return value.
    Flip,
    /// Complements the bit; returns the old value.
    TestAndFlip,
}

impl BitOp {
    /// All eight operations, in the paper's order.
    pub const ALL: [BitOp; 8] = [
        BitOp::Skip,
        BitOp::Read,
        BitOp::Write0,
        BitOp::TestAndReset,
        BitOp::Write1,
        BitOp::TestAndSet,
        BitOp::Flip,
        BitOp::TestAndFlip,
    ];

    /// Applies the operation to a bit, returning `(new_value, returned)`.
    pub const fn apply(self, bit: bool) -> (bool, Option<bool>) {
        match self {
            BitOp::Skip => (bit, None),
            BitOp::Read => (bit, Some(bit)),
            BitOp::Write0 => (false, None),
            BitOp::TestAndReset => (false, Some(bit)),
            BitOp::Write1 => (true, None),
            BitOp::TestAndSet => (true, Some(bit)),
            BitOp::Flip => (!bit, None),
            BitOp::TestAndFlip => (!bit, Some(bit)),
        }
    }

    /// Returns `true` if the operation returns the bit's old value.
    pub const fn returns_value(self) -> bool {
        matches!(
            self,
            BitOp::Read | BitOp::TestAndReset | BitOp::TestAndSet | BitOp::TestAndFlip
        )
    }

    /// Returns `true` if the operation can change the bit's value.
    pub const fn mutates(self) -> bool {
        !matches!(self, BitOp::Skip | BitOp::Read)
    }

    /// The *dual* operation (Section 3.2).
    ///
    /// `Write0`/`Write1` and `TestAndReset`/`TestAndSet` are duals of each
    /// other; `Skip`, `Read`, `Flip` and `TestAndFlip` are their own duals.
    /// For any complexity measure, bounds for a model also hold for its
    /// dual model.
    pub const fn dual(self) -> BitOp {
        match self {
            BitOp::Write0 => BitOp::Write1,
            BitOp::Write1 => BitOp::Write0,
            BitOp::TestAndReset => BitOp::TestAndSet,
            BitOp::TestAndSet => BitOp::TestAndReset,
            other => other,
        }
    }

    /// The operation's name as written in the paper.
    pub const fn name(self) -> &'static str {
        match self {
            BitOp::Skip => "skip",
            BitOp::Read => "read",
            BitOp::Write0 => "write-0",
            BitOp::TestAndReset => "test-and-reset",
            BitOp::Write1 => "write-1",
            BitOp::TestAndSet => "test-and-set",
            BitOp::Flip => "flip",
            BitOp::TestAndFlip => "test-and-flip",
        }
    }
}

impl fmt::Display for BitOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantics_match_paper_table() {
        for bit in [false, true] {
            assert_eq!(BitOp::Skip.apply(bit), (bit, None));
            assert_eq!(BitOp::Read.apply(bit), (bit, Some(bit)));
            assert_eq!(BitOp::Write0.apply(bit), (false, None));
            assert_eq!(BitOp::TestAndReset.apply(bit), (false, Some(bit)));
            assert_eq!(BitOp::Write1.apply(bit), (true, None));
            assert_eq!(BitOp::TestAndSet.apply(bit), (true, Some(bit)));
            assert_eq!(BitOp::Flip.apply(bit), (!bit, None));
            assert_eq!(BitOp::TestAndFlip.apply(bit), (!bit, Some(bit)));
        }
    }

    #[test]
    fn duality_is_an_involution() {
        for op in BitOp::ALL {
            assert_eq!(op.dual().dual(), op);
        }
    }

    #[test]
    fn self_dual_operations() {
        for op in [BitOp::Skip, BitOp::Read, BitOp::Flip, BitOp::TestAndFlip] {
            assert_eq!(op.dual(), op);
        }
    }

    /// The defining property of duality: applying the dual operation to the
    /// complemented bit complements the result of the original operation.
    #[test]
    fn dual_commutes_with_complement() {
        for op in BitOp::ALL {
            for bit in [false, true] {
                let (new, ret) = op.apply(bit);
                let (dnew, dret) = op.dual().apply(!bit);
                assert_eq!(dnew, !new, "{op}");
                assert_eq!(dret, ret.map(|b| !b), "{op}");
            }
        }
    }

    #[test]
    fn returns_value_classification() {
        let returning: Vec<_> = BitOp::ALL.iter().filter(|o| o.returns_value()).collect();
        assert_eq!(returning.len(), 4);
        assert!(BitOp::TestAndFlip.returns_value());
        assert!(!BitOp::Flip.returns_value());
    }

    #[test]
    fn mutation_classification() {
        assert!(!BitOp::Skip.mutates());
        assert!(!BitOp::Read.mutates());
        for op in [
            BitOp::Write0,
            BitOp::Write1,
            BitOp::TestAndReset,
            BitOp::TestAndSet,
            BitOp::Flip,
            BitOp::TestAndFlip,
        ] {
            assert!(op.mutates(), "{op}");
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(BitOp::TestAndFlip.to_string(), "test-and-flip");
        assert_eq!(BitOp::Write0.to_string(), "write-0");
    }
}
