//! Read/write footprints of atomic steps over shared locations.
//!
//! Partial-order reduction (in `cfc-verify`) needs an *independence
//! relation* between the atomic steps of different processes: two steps
//! commute — executing them in either order reaches the same state —
//! exactly when their footprints do not conflict, i.e. no location is
//! written by one and accessed by the other. The locations of the paper's
//! model are shared registers; a [`RegisterSet`] is a compact bitset of
//! them, and a [`Footprint`] splits one step's accessed locations into a
//! read set and a write set according to the step's [`AccessClass`].
//!
//! [`AccessClass`]: crate::AccessClass

use crate::ids::RegisterId;
use crate::layout::Layout;
use crate::op::{Op, Step};

/// A set of shared locations (registers), stored as a bitset.
///
/// Used both for step footprints and for the
/// [`Process::may_access`](crate::Process::may_access) over-approximation
/// of a process's future accesses.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct RegisterSet {
    words: Vec<u64>,
}

impl RegisterSet {
    /// The empty set.
    pub fn new() -> Self {
        RegisterSet::default()
    }

    /// Adds a register to the set.
    pub fn insert(&mut self, r: RegisterId) {
        let i = r.index();
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (i % 64);
    }

    /// Adds every register of an iterator.
    pub fn extend(&mut self, regs: impl IntoIterator<Item = RegisterId>) {
        for r in regs {
            self.insert(r);
        }
    }

    /// Removes every member, keeping the allocation.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Is the register a member?
    pub fn contains(&self, r: RegisterId) -> bool {
        let i = r.index();
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Do the two sets share a member?
    pub fn intersects(&self, other: &RegisterSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(a, b)| a & b != 0)
    }

    /// Adds every member of `other`.
    pub fn union_with(&mut self, other: &RegisterSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Is every member of `self` also a member of `other`?
    ///
    /// Handles differing backing lengths: a set bit of `self` beyond
    /// `other`'s last word is not a subset.
    pub fn is_subset(&self, other: &RegisterSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Iterates the members in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = RegisterId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            (0..64)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| RegisterId::new((wi * 64 + b) as u32))
        })
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// The number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The set of registers in both `self` and `other`.
    #[must_use]
    pub fn intersection(&self, other: &RegisterSet) -> RegisterSet {
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        RegisterSet { words }
    }
}

/// The read and write location sets of one atomic step.
///
/// Steps that never touch shared memory ([`Step::Internal`],
/// [`Step::Halt`]) have the empty footprint and are independent of
/// everything.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Locations the step observes.
    pub reads: RegisterSet,
    /// Locations the step mutates.
    pub writes: RegisterSet,
}

impl Footprint {
    /// The footprint of one operation under a layout.
    ///
    /// Read–modify–write bit operations put their register in both sets;
    /// packed-word operations cover every accessed field.
    pub fn of_op(op: &Op, layout: &Layout) -> Footprint {
        let mut fp = Footprint::default();
        let class = op.class();
        for r in op.registers(layout) {
            if class.reads() {
                fp.reads.insert(r);
            }
            if class.writes() {
                fp.writes.insert(r);
            }
        }
        fp
    }

    /// The footprint of one step: its operation's footprint, or the empty
    /// footprint for internal/halt steps.
    pub fn of_step(step: &Step, layout: &Layout) -> Footprint {
        match step.op() {
            Some(op) => Footprint::of_op(op, layout),
            None => Footprint::default(),
        }
    }

    /// Do two steps with these footprints commute?
    ///
    /// Independence in the classical partial-order-reduction sense: no
    /// location is written by one and read or written by the other, so
    /// executing the steps in either order yields the same memory, the
    /// same results, and hence the same successor state.
    pub fn independent(&self, other: &Footprint) -> bool {
        !self.writes.intersects(&other.writes)
            && !self.writes.intersects(&other.reads)
            && !self.reads.intersects(&other.writes)
    }

    /// Does the step access any location of `set` (reading or writing)?
    ///
    /// Conservative conflict test against a location set with unknown
    /// read/write split, such as a [`Process::may_access`]
    /// over-approximation.
    ///
    /// [`Process::may_access`]: crate::Process::may_access
    pub fn touches(&self, set: &RegisterSet) -> bool {
        self.reads.intersects(set) || self.writes.intersects(set)
    }

    /// Do two steps with these footprints conflict — the negation of
    /// [`Footprint::independent`]? Conflicting steps do not commute, so
    /// their order on a trace is observable: dynamic partial-order
    /// reduction records exactly these pairs as happens-before edges.
    pub fn conflicts_with(&self, other: &Footprint) -> bool {
        !self.independent(other)
    }

    /// The locations two conflicting steps actually conflict *on*: every
    /// register written by one and accessed by the other. Empty exactly
    /// when the footprints are independent.
    #[must_use]
    pub fn conflict_registers(&self, other: &Footprint) -> RegisterSet {
        let mut out = self.writes.intersection(&other.writes);
        out.union_with(&self.writes.intersection(&other.reads));
        out.union_with(&self.reads.intersection(&other.writes));
        out
    }

    /// Does the step touch no shared location at all?
    pub fn is_local(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitop::BitOp;
    use crate::value::Value;

    fn regs() -> (Layout, RegisterId, RegisterId, RegisterId) {
        let mut layout = Layout::new();
        let a = layout.bit("a", false);
        let b = layout.bit("b", false);
        let c = layout.bit("c", false);
        (layout, a, b, c)
    }

    #[test]
    fn register_set_basics() {
        let (_, a, b, _) = regs();
        let mut s = RegisterSet::new();
        assert!(s.is_empty());
        s.insert(a);
        assert!(s.contains(a));
        assert!(!s.contains(b));
        assert_eq!(s.len(), 1);
        let mut t = RegisterSet::new();
        t.insert(b);
        assert!(!s.intersects(&t));
        t.insert(a);
        assert!(s.intersects(&t));
        s.union_with(&t);
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn subset_handles_unequal_backing_lengths() {
        let mut small = RegisterSet::new();
        small.insert(RegisterId::new(3));
        let mut large = RegisterSet::new();
        large.insert(RegisterId::new(3));
        large.insert(RegisterId::new(130));
        assert!(small.is_subset(&large));
        assert!(!large.is_subset(&small));
        assert!(RegisterSet::new().is_subset(&small));
        assert_eq!(large.iter().map(|r| r.index()).collect::<Vec<_>>(), [3, 130]);
    }

    #[test]
    fn register_set_spans_many_words() {
        let mut s = RegisterSet::new();
        s.insert(RegisterId::new(130));
        assert!(s.contains(RegisterId::new(130)));
        assert!(!s.contains(RegisterId::new(2)));
        let mut t = RegisterSet::new();
        t.insert(RegisterId::new(2));
        assert!(!s.intersects(&t));
        assert!(!t.intersects(&s));
    }

    #[test]
    fn read_write_classification() {
        let (layout, a, _, _) = regs();
        let read = Footprint::of_op(&Op::Read(a), &layout);
        assert!(read.reads.contains(a) && read.writes.is_empty());
        let write = Footprint::of_op(&Op::Write(a, Value::ONE), &layout);
        assert!(write.writes.contains(a) && write.reads.is_empty());
        let rmw = Footprint::of_op(&Op::Bit(a, BitOp::TestAndSet), &layout);
        assert!(rmw.reads.contains(a) && rmw.writes.contains(a));
    }

    #[test]
    fn independence_is_conflict_freedom() {
        let (layout, a, b, _) = regs();
        let read_a = Footprint::of_op(&Op::Read(a), &layout);
        let read_a2 = read_a.clone();
        let write_a = Footprint::of_op(&Op::Write(a, Value::ONE), &layout);
        let write_b = Footprint::of_op(&Op::Write(b, Value::ONE), &layout);
        // Two reads of the same register commute.
        assert!(read_a.independent(&read_a2));
        // Read/write and write/write on the same register conflict.
        assert!(!read_a.independent(&write_a));
        assert!(!write_a.independent(&write_a.clone()));
        // Accesses to distinct registers commute.
        assert!(write_a.independent(&write_b));
        assert!(read_a.independent(&write_b));
    }

    #[test]
    fn local_steps_have_empty_footprints() {
        let (layout, a, _, _) = regs();
        assert!(Footprint::of_step(&Step::Internal, &layout).is_local());
        assert!(Footprint::of_step(&Step::Halt, &layout).is_local());
        let op = Footprint::of_step(&Step::Op(Op::Read(a)), &layout);
        assert!(!op.is_local());
        // Empty footprints are independent of everything.
        assert!(Footprint::default().independent(&op));
    }

    #[test]
    fn conflict_registers_name_the_raced_locations() {
        let (layout, a, b, _) = regs();
        let read_a = Footprint::of_op(&Op::Read(a), &layout);
        let write_a = Footprint::of_op(&Op::Write(a, Value::ONE), &layout);
        let write_b = Footprint::of_op(&Op::Write(b, Value::ONE), &layout);

        assert!(read_a.conflicts_with(&write_a));
        assert!(!read_a.conflicts_with(&write_b));
        // conflict_registers is empty iff independent, and symmetric.
        let regs_rw = read_a.conflict_registers(&write_a);
        assert_eq!(regs_rw.iter().collect::<Vec<_>>(), [a]);
        assert_eq!(regs_rw, write_a.conflict_registers(&read_a));
        assert!(read_a.conflict_registers(&write_b).is_empty());
        // Write/write conflicts are reported too.
        assert!(write_a.conflict_registers(&write_a.clone()).contains(a));
    }

    #[test]
    fn intersection_handles_unequal_backing_lengths() {
        let mut small = RegisterSet::new();
        small.insert(RegisterId::new(3));
        let mut large = RegisterSet::new();
        large.insert(RegisterId::new(3));
        large.insert(RegisterId::new(130));
        let both = small.intersection(&large);
        assert_eq!(both.iter().collect::<Vec<_>>(), [RegisterId::new(3)]);
        assert_eq!(both, large.intersection(&small));
        assert!(small.intersection(&RegisterSet::new()).is_empty());
    }

    #[test]
    fn touches_is_conservative() {
        let (layout, a, b, _) = regs();
        let read_a = Footprint::of_op(&Op::Read(a), &layout);
        let mut may = RegisterSet::new();
        may.insert(b);
        assert!(!read_a.touches(&may));
        may.insert(a);
        // Even a pure read "touches" a set that might be written.
        assert!(read_a.touches(&may));
    }
}
