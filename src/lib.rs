//! # cfc — Contention-Free Complexity of Shared Memory Algorithms
//!
//! A complete reproduction of *Alur & Taubenfeld, "Contention-Free
//! Complexity of Shared Memory Algorithms"* (PODC 1994; Information and
//! Computation 126, 62–73, 1996) as a Rust workspace. This facade crate
//! re-exports the whole public API; see the individual crates for depth:
//!
//! * [`core`](cfc_core) — the formal execution model: bit-granular shared
//!   registers with an atomicity parameter `l`, the eight single-bit RMW
//!   operations, packed multi-grain words, processes as state machines,
//!   schedulers, crash injection, traces, and the four complexity
//!   measures.
//! * [`bounds`](cfc_bounds) — every closed-form bound from the paper
//!   (Theorems 1–7, Lemmas 3 and 6) as plain functions.
//! * [`mutex`](cfc_mutex) — Lamport's fast mutex, Peterson, the Theorem 3
//!   tournament trees, splitter-based contention detection, and the
//!   Lemma 1 reduction.
//! * [`naming`](cfc_naming) — the Section 3 wait-free naming algorithms
//!   across bit-operation models, with generic dualization.
//! * [`verify`](cfc_verify) — exhaustive interleaving exploration with
//!   safety, progress, and fair-cycle liveness checking (starvation
//!   freedom, bounded bypass), the Lemma 2 merge attack, and
//!   lower-bound adversaries.
//! * [`native`](cfc_native) — the same algorithms on `std::sync::atomic`
//!   for wall-clock experiments.
//!
//! ## Quick start
//!
//! Measure the paper's headline claim — Lamport's algorithm enters and
//! leaves its critical section in 7 accesses to 3 registers when alone,
//! for any number of processes:
//!
//! ```
//! use cfc::mutex::{measure, LamportFast, MutexAlgorithm};
//! use cfc::core::ProcessId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! for n in [2usize, 64, 4096] {
//!     let alg = LamportFast::new(n);
//!     let trip = measure::contention_free_trip(&alg, ProcessId::new(0))?;
//!     assert_eq!(trip.total.steps, 7);
//!     assert_eq!(trip.total.registers, 3);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cfc_bounds as bounds;
pub use cfc_core as core;
pub use cfc_mutex as mutex;
pub use cfc_naming as naming;
pub use cfc_native as native;
pub use cfc_verify as verify;

/// Commonly used items, importable in one line.
pub mod prelude {
    pub use cfc_core::{
        run_schedule, run_sequential, run_solo, BitOp, Complexity, ExecConfig, FaultPlan, Layout,
        Lockstep, Memory, Op, OpResult, Process, ProcessId, RandomSched, RegisterId, RoundRobin,
        Scheduler, Section, Sequential, Solo, Step, Trace, Value,
    };
    pub use cfc_mutex::{
        DetectionAlgorithm, LamportFast, LockProcess, MutexAlgorithm, PetersonTwo, Splitter,
        SplitterTree, Tournament,
    };
    pub use cfc_naming::{
        Dualized, Model, NamingAlgorithm, TafTree, TasReadSearch, TasScan, TasTarTree,
    };
}
